//! The immutable auction input: operators with loads, queries with bids and
//! operator sets, and the derived per-query load statistics.

use super::{OperatorId, QueryId, UserId};
use crate::units::{Load, Money};
use serde::{Deserialize, Serialize};

/// An operator `o_j` with its load `c_j` — the fraction of system capacity it
/// consumes per time unit (§II). Loads are assumed to be "reasonably
/// approximated by the system"; the `cqac-dsms` crate provides one such
/// approximation from measured per-tuple costs and input rates.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OperatorDef {
    /// Dense id within the instance.
    pub id: OperatorId,
    /// The operator's load `c_j`.
    pub load: Load,
}

/// A submitted continuous query: the user, her bid, and the set of operators
/// the query consists of (deduplicated, sorted).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryDef {
    /// Dense id within the instance.
    pub id: QueryId,
    /// The submitting user. Distinct queries may share a user.
    pub user: UserId,
    /// The declared bid `b_i` (under truthful bidding, the valuation `v_i`).
    pub bid: Money,
    /// Sorted, deduplicated operator ids comprising the query.
    pub operators: Vec<OperatorId>,
}

/// A complete, validated auction input instance.
///
/// Construction goes through [`super::InstanceBuilder`], which validates
/// operator references and precomputes:
///
/// * per-operator **sharing degree** `l_j` — how many queries contain `o_j`;
/// * per-query **total load** `C^T_i = Σ_{o_j ∈ q_i} c_j` (§IV-C);
/// * per-query **static fair-share load** `C^SF_i = Σ c_j / l_j` (Def. 3).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AuctionInstance {
    capacity: Load,
    operators: Vec<OperatorDef>,
    queries: Vec<QueryDef>,
    /// `sharers[j]` = number of queries containing operator `j` (its degree
    /// of sharing).
    sharers: Vec<u32>,
    /// `queries_of[j]` = the queries containing operator `j`, ascending.
    queries_of: Vec<Vec<QueryId>>,
    /// `total_load[i]` = `C^T_i`.
    total_load: Vec<Load>,
    /// `fair_share_load[i]` = `C^SF_i`.
    fair_share_load: Vec<Load>,
}

impl AuctionInstance {
    pub(super) fn from_parts(
        capacity: Load,
        operators: Vec<OperatorDef>,
        queries: Vec<QueryDef>,
    ) -> Self {
        let mut sharers = vec![0u32; operators.len()];
        let mut queries_of: Vec<Vec<QueryId>> = vec![Vec::new(); operators.len()];
        for q in &queries {
            for &op in &q.operators {
                sharers[op.index()] += 1;
                queries_of[op.index()].push(q.id);
            }
        }
        let total_load: Vec<Load> = queries
            .iter()
            .map(|q| {
                q.operators
                    .iter()
                    .map(|op| operators[op.index()].load)
                    .sum()
            })
            .collect();
        let fair_share_load: Vec<Load> = queries
            .iter()
            .map(|q| {
                q.operators
                    .iter()
                    .map(|op| {
                        operators[op.index()]
                            .load
                            .div_count(u64::from(sharers[op.index()]))
                    })
                    .sum()
            })
            .collect();
        Self {
            capacity,
            operators,
            queries,
            sharers,
            queries_of,
            total_load,
            fair_share_load,
        }
    }

    /// The system capacity: the admitted queries' distinct-union operator
    /// load may not exceed it.
    #[inline]
    pub fn capacity(&self) -> Load {
        self.capacity
    }

    /// All operators, indexed by [`OperatorId`].
    #[inline]
    pub fn operators(&self) -> &[OperatorDef] {
        &self.operators
    }

    /// All queries, indexed by [`QueryId`].
    #[inline]
    pub fn queries(&self) -> &[QueryDef] {
        &self.queries
    }

    /// Number of submitted queries.
    #[inline]
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }

    /// Number of distinct operators.
    #[inline]
    pub fn num_operators(&self) -> usize {
        self.operators.len()
    }

    /// The query with the given id.
    #[inline]
    pub fn query(&self, id: QueryId) -> &QueryDef {
        &self.queries[id.index()]
    }

    /// The load `c_j` of an operator.
    #[inline]
    pub fn operator_load(&self, id: OperatorId) -> Load {
        self.operators[id.index()].load
    }

    /// The sharing degree `l_j` of operator `j` — how many queries contain it.
    #[inline]
    pub fn sharing_degree(&self, id: OperatorId) -> u32 {
        self.sharers[id.index()]
    }

    /// The queries containing operator `j`, ascending.
    #[inline]
    pub fn queries_sharing(&self, id: OperatorId) -> &[QueryId] {
        &self.queries_of[id.index()]
    }

    /// The maximum sharing degree over all operators (the x-axis of the
    /// paper's Figure 4).
    pub fn max_degree_of_sharing(&self) -> u32 {
        self.sharers.iter().copied().max().unwrap_or(0)
    }

    /// The query's total load `C^T_i` (§IV-C).
    #[inline]
    pub fn total_load(&self, id: QueryId) -> Load {
        self.total_load[id.index()]
    }

    /// The query's static fair-share load `C^SF_i` (Definition 3).
    #[inline]
    pub fn fair_share_load(&self, id: QueryId) -> Load {
        self.fair_share_load[id.index()]
    }

    /// The bid `b_i` of a query.
    #[inline]
    pub fn bid(&self, id: QueryId) -> Money {
        self.queries[id.index()].bid
    }

    /// Iterator over all query ids in submission order.
    pub fn query_ids(&self) -> impl Iterator<Item = QueryId> + '_ {
        (0..self.queries.len() as u32).map(QueryId)
    }

    /// The highest bid `h` among all queries (the paper's profit-guarantee
    /// parameter).
    pub fn max_bid(&self) -> Money {
        self.queries
            .iter()
            .map(|q| q.bid)
            .max()
            .unwrap_or(Money::ZERO)
    }

    /// Sum of all distinct operator loads — the load of servicing *every*
    /// query (the paper's "total query demand").
    pub fn total_demand(&self) -> Load {
        self.operators.iter().map(|o| o.load).sum()
    }

    /// Returns a copy of the instance with query `id`'s bid replaced — the
    /// basic move of the strategyproofness deviation tests.
    pub fn with_bid(&self, id: QueryId, bid: Money) -> Self {
        let mut copy = self.clone();
        copy.queries[id.index()].bid = bid;
        copy
    }

    /// Returns a copy with query `id`'s *operator set* replaced — the move
    /// of the single-minded-bidder monotonicity audits (§III): users might
    /// misreport which operators their query contains. Derived statistics
    /// (sharing degrees, fair shares) are recomputed.
    ///
    /// # Panics
    /// Panics when `operators` is empty or references unknown ids.
    pub fn with_query_operators(&self, id: QueryId, operators: &[OperatorId]) -> Self {
        assert!(!operators.is_empty(), "a query needs at least one operator");
        let mut ops = operators.to_vec();
        ops.sort_unstable();
        ops.dedup();
        for op in &ops {
            assert!(op.index() < self.operators.len(), "unknown operator {op}");
        }
        let mut queries = self.queries.clone();
        queries[id.index()].operators = ops;
        Self::from_parts(self.capacity, self.operators.clone(), queries)
    }

    /// Returns a copy of the instance with extra queries appended (a sybil
    /// attack, §V). New queries may reference existing operators and/or the
    /// `new_operators` appended after the existing ones. Derived statistics
    /// (sharing degrees, fair shares) are recomputed — which is exactly how
    /// fake queries manipulate CAF's fair-share loads.
    pub fn with_extra_queries(
        &self,
        new_operators: Vec<Load>,
        new_queries: Vec<(UserId, Money, Vec<OperatorId>)>,
    ) -> Self {
        let mut operators = self.operators.clone();
        for load in new_operators {
            let id = OperatorId(operators.len() as u32);
            operators.push(OperatorDef { id, load });
        }
        let mut queries = self.queries.clone();
        for (user, bid, ops) in new_queries {
            let mut ops = ops;
            ops.sort_unstable();
            ops.dedup();
            for op in &ops {
                assert!(
                    op.index() < operators.len(),
                    "sybil query references unknown operator {op}"
                );
            }
            let id = QueryId(queries.len() as u32);
            queries.push(QueryDef {
                id,
                user,
                bid,
                operators: ops,
            });
        }
        Self::from_parts(self.capacity, operators, queries)
    }
}

#[cfg(test)]
mod tests {
    use crate::model::InstanceBuilder;
    use crate::units::{Load, Money};

    /// The paper's Example 1 (Figures 1–2): capacity 10, operators
    /// A(4) B(1) C(2) D(7) E(3); q1={A,B} bid $55, q2={A,C} bid $72,
    /// q3={D,E} bid $100.
    pub(crate) fn example1() -> crate::model::AuctionInstance {
        let mut b = InstanceBuilder::new(Load::from_units(10.0));
        let a = b.operator(Load::from_units(4.0));
        let ob = b.operator(Load::from_units(1.0));
        let c = b.operator(Load::from_units(2.0));
        let d = b.operator(Load::from_units(7.0));
        let e = b.operator(Load::from_units(3.0));
        b.query(Money::from_dollars(55.0), &[a, ob]);
        b.query(Money::from_dollars(72.0), &[a, c]);
        b.query(Money::from_dollars(100.0), &[d, e]);
        b.build().unwrap()
    }

    #[test]
    fn example1_loads() {
        use crate::model::QueryId;
        let inst = example1();
        assert_eq!(inst.total_load(QueryId(0)), Load::from_units(5.0));
        assert_eq!(inst.total_load(QueryId(1)), Load::from_units(6.0));
        assert_eq!(inst.total_load(QueryId(2)), Load::from_units(10.0));
        // A is shared by q1 and q2: fair shares 4/2+1=3 and 4/2+2=4.
        assert_eq!(inst.fair_share_load(QueryId(0)), Load::from_units(3.0));
        assert_eq!(inst.fair_share_load(QueryId(1)), Load::from_units(4.0));
        assert_eq!(inst.fair_share_load(QueryId(2)), Load::from_units(10.0));
        assert_eq!(inst.max_degree_of_sharing(), 2);
        assert_eq!(inst.total_demand(), Load::from_units(17.0));
        assert_eq!(inst.max_bid(), Money::from_dollars(100.0));
    }

    #[test]
    fn with_bid_only_changes_target() {
        use crate::model::QueryId;
        let inst = example1();
        let changed = inst.with_bid(QueryId(1), Money::from_dollars(1.0));
        assert_eq!(changed.bid(QueryId(1)), Money::from_dollars(1.0));
        assert_eq!(changed.bid(QueryId(0)), inst.bid(QueryId(0)));
        assert_eq!(
            changed.fair_share_load(QueryId(0)),
            inst.fair_share_load(QueryId(0))
        );
    }

    #[test]
    fn with_extra_queries_recomputes_fair_share() {
        use crate::model::{OperatorId, QueryId, UserId};
        let inst = example1();
        // A fake query sharing operator A lowers q1's and q2's fair share.
        let attacked = inst.with_extra_queries(
            vec![],
            vec![(UserId(0), Money::from_micro(1), vec![OperatorId(0)])],
        );
        assert_eq!(attacked.sharing_degree(OperatorId(0)), 3);
        // q1: 4/3 + 1; floor division in micro units.
        assert_eq!(
            attacked.fair_share_load(QueryId(0)).micro(),
            4_000_000 / 3 + 1_000_000
        );
    }
}
