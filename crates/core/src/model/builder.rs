//! Validated construction of [`AuctionInstance`]s.

use super::{AuctionInstance, OperatorDef, OperatorId, QueryDef, QueryId, UserId};
use crate::units::{Load, Money};
use std::fmt;

/// Errors rejected by [`InstanceBuilder::build`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// A query referenced an operator id that was never declared.
    UnknownOperator {
        /// The offending query.
        query: QueryId,
        /// The dangling operator reference.
        operator: OperatorId,
    },
    /// A query has an empty operator set; such a query has no load and the
    /// paper's density priorities are undefined for it.
    EmptyQuery {
        /// The offending query.
        query: QueryId,
    },
    /// Capacity must be positive for the auction to be meaningful.
    ZeroCapacity,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownOperator { query, operator } => {
                write!(f, "query {query} references unknown operator {operator}")
            }
            BuildError::EmptyQuery { query } => {
                write!(f, "query {query} has an empty operator set")
            }
            BuildError::ZeroCapacity => write!(f, "system capacity must be positive"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Incrementally assembles an [`AuctionInstance`].
///
/// ```
/// use cqac_core::model::InstanceBuilder;
/// use cqac_core::units::{Load, Money};
///
/// let mut b = InstanceBuilder::new(Load::from_units(10.0));
/// let a = b.operator(Load::from_units(4.0));
/// let c = b.operator(Load::from_units(2.0));
/// b.query(Money::from_dollars(72.0), &[a, c]);
/// let inst = b.build().unwrap();
/// assert_eq!(inst.num_queries(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct InstanceBuilder {
    capacity: Load,
    operators: Vec<OperatorDef>,
    queries: Vec<QueryDef>,
}

impl InstanceBuilder {
    /// Starts an instance with the given system capacity.
    pub fn new(capacity: Load) -> Self {
        Self {
            capacity,
            operators: Vec::new(),
            queries: Vec::new(),
        }
    }

    /// Pre-allocates for the expected number of operators and queries.
    pub fn with_capacity_hint(mut self, operators: usize, queries: usize) -> Self {
        self.operators.reserve(operators);
        self.queries.reserve(queries);
        self
    }

    /// Declares an operator with load `c_j` and returns its id.
    pub fn operator(&mut self, load: Load) -> OperatorId {
        let id = OperatorId(self.operators.len() as u32);
        self.operators.push(OperatorDef { id, load });
        id
    }

    /// Submits a query for a fresh single-query user (user id = query id),
    /// which is the common case in the paper's experiments.
    pub fn query(&mut self, bid: Money, operators: &[OperatorId]) -> QueryId {
        let user = UserId(self.queries.len() as u32);
        self.query_for_user(user, bid, operators)
    }

    /// Submits a query on behalf of an explicit user (needed to model sybil
    /// attackers who control several identities).
    pub fn query_for_user(
        &mut self,
        user: UserId,
        bid: Money,
        operators: &[OperatorId],
    ) -> QueryId {
        let id = QueryId(self.queries.len() as u32);
        let mut ops = operators.to_vec();
        ops.sort_unstable();
        ops.dedup();
        self.queries.push(QueryDef {
            id,
            user,
            bid,
            operators: ops,
        });
        id
    }

    /// Number of queries added so far.
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }

    /// Number of operators added so far.
    pub fn num_operators(&self) -> usize {
        self.operators.len()
    }

    /// Validates and finalizes the instance.
    pub fn build(self) -> Result<AuctionInstance, BuildError> {
        if self.capacity.is_zero() {
            return Err(BuildError::ZeroCapacity);
        }
        for q in &self.queries {
            if q.operators.is_empty() {
                return Err(BuildError::EmptyQuery { query: q.id });
            }
            for &op in &q.operators {
                if op.index() >= self.operators.len() {
                    return Err(BuildError::UnknownOperator {
                        query: q.id,
                        operator: op,
                    });
                }
            }
        }
        Ok(AuctionInstance::from_parts(
            self.capacity,
            self.operators,
            self.queries,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_capacity() {
        let b = InstanceBuilder::new(Load::ZERO);
        assert_eq!(b.build().unwrap_err(), BuildError::ZeroCapacity);
    }

    #[test]
    fn rejects_empty_query() {
        let mut b = InstanceBuilder::new(Load::ONE);
        b.query(Money::from_dollars(1.0), &[]);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::EmptyQuery { .. }
        ));
    }

    #[test]
    fn rejects_unknown_operator() {
        let mut b = InstanceBuilder::new(Load::ONE);
        b.query(Money::from_dollars(1.0), &[OperatorId(7)]);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::UnknownOperator {
                operator: OperatorId(7),
                ..
            }
        ));
    }

    #[test]
    fn dedupes_operator_lists() {
        let mut b = InstanceBuilder::new(Load::from_units(10.0));
        let a = b.operator(Load::ONE);
        let q = b.query(Money::from_dollars(1.0), &[a, a, a]);
        let inst = b.build().unwrap();
        assert_eq!(inst.query(q).operators, vec![a]);
        assert_eq!(inst.total_load(q), Load::ONE);
    }

    #[test]
    fn users_default_to_query_ids() {
        let mut b = InstanceBuilder::new(Load::from_units(10.0));
        let a = b.operator(Load::ONE);
        b.query(Money::from_dollars(1.0), &[a]);
        b.query_for_user(UserId(0), Money::from_dollars(2.0), &[a]);
        let inst = b.build().unwrap();
        assert_eq!(inst.query(QueryId(0)).user, UserId(0));
        assert_eq!(inst.query(QueryId(1)).user, UserId(0)); // same owner
    }
}
