//! Fixed-point quantities used throughout the auction.
//!
//! The paper works with real-valued operator loads (Zipf up to 10 capacity
//! units) and dollar bids (Zipf up to $100). Floating point would make
//! priority ordering (bid/load density comparisons) platform- and
//! optimization-dependent, which in turn would make the theorem-shaped tests
//! (monotonicity, critical-value payments, sybil immunity) flaky. Instead we
//! store both loads and money as **u64 micro-units** (scale 10⁻⁶) and compare
//! densities exactly with u128 cross-multiplication.
//!
//! Ranges (all far inside u64/u128):
//! * operator load ≤ 10 units = 10⁷ micro; total workload load ≤ ~10¹¹ micro;
//! * bids ≤ $100 = 10⁸ micro; total profit ≤ ~10¹¹ micro;
//! * density cross products ≤ 10⁸ × 10¹¹ = 10¹⁹ < u128::MAX.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Number of micro-units per whole unit.
pub const MICRO: u64 = 1_000_000;

macro_rules! fixed_point_type {
    ($(#[$meta:meta])* $name:ident, $unit_name:literal) => {
        $(#[$meta])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(u64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0);
            /// The largest representable quantity.
            pub const MAX: Self = Self(u64::MAX);
            /// One whole unit.
            pub const ONE: Self = Self(MICRO);
            /// The smallest positive quantity (one micro-unit).
            pub const EPSILON: Self = Self(1);

            /// Builds a quantity from raw micro-units.
            #[inline]
            pub const fn from_micro(raw: u64) -> Self {
                Self(raw)
            }

            /// Raw micro-unit value.
            #[inline]
            pub const fn micro(self) -> u64 {
                self.0
            }

            /// Builds a quantity from a non-negative float number of whole
            /// units, rounding to the nearest micro-unit.
            ///
            /// # Panics
            /// Panics if `units` is negative, NaN, or too large for `u64`.
            #[inline]
            pub fn from_units(units: f64) -> Self {
                assert!(
                    units.is_finite() && units >= 0.0,
                    concat!($unit_name, " must be a non-negative finite number, got {}"),
                    units
                );
                let raw = units * MICRO as f64;
                assert!(
                    raw <= u64::MAX as f64,
                    concat!($unit_name, " {} overflows the fixed-point range"),
                    units
                );
                Self(raw.round() as u64)
            }

            /// The quantity as a float number of whole units.
            #[inline]
            pub fn as_f64(self) -> f64 {
                self.0 as f64 / MICRO as f64
            }

            /// True when the quantity is exactly zero.
            #[inline]
            pub const fn is_zero(self) -> bool {
                self.0 == 0
            }

            /// Checked addition; `None` on overflow.
            #[inline]
            pub fn checked_add(self, rhs: Self) -> Option<Self> {
                self.0.checked_add(rhs.0).map(Self)
            }

            /// Checked subtraction; `None` if `rhs > self`.
            #[inline]
            pub fn checked_sub(self, rhs: Self) -> Option<Self> {
                self.0.checked_sub(rhs.0).map(Self)
            }

            /// Saturating subtraction (floors at zero).
            #[inline]
            pub fn saturating_sub(self, rhs: Self) -> Self {
                Self(self.0.saturating_sub(rhs.0))
            }

            /// Divides the quantity by an integer count, rounding down.
            /// Used for fair-share loads (`c_j / l`).
            ///
            /// # Panics
            /// Panics when `divisor == 0`.
            #[inline]
            pub fn div_count(self, divisor: u64) -> Self {
                assert!(divisor != 0, "division of a fixed-point quantity by zero");
                Self(self.0 / divisor)
            }

            /// Multiplies the quantity by an integer count, panicking on
            /// overflow (quantities in this crate stay far below the limit).
            #[inline]
            pub fn mul_count(self, count: u64) -> Self {
                Self(
                    self.0
                        .checked_mul(count)
                        .expect("fixed-point multiplication overflow"),
                )
            }

            /// Scales the quantity by the exact rational `num/den`, rounding
            /// down, using u128 intermediate arithmetic.
            ///
            /// # Panics
            /// Panics when `den == 0` or the result overflows `u64`.
            #[inline]
            pub fn mul_ratio(self, num: u64, den: u64) -> Self {
                assert!(den != 0, "mul_ratio with zero denominator");
                let wide = self.0 as u128 * num as u128 / den as u128;
                assert!(wide <= u64::MAX as u128, "mul_ratio overflow");
                Self(wide as u64)
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(
                    self.0
                        .checked_add(rhs.0)
                        .expect(concat!($unit_name, " addition overflow")),
                )
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                *self = *self + rhs;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(
                    self.0
                        .checked_sub(rhs.0)
                        .expect(concat!($unit_name, " subtraction underflow")),
                )
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                *self = *self - rhs;
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::ZERO, |acc, x| acc + x)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($unit_name, "({})"), self.as_f64())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*}", prec, self.as_f64())
                } else {
                    write!(f, "{}", self.as_f64())
                }
            }
        }
    };
}

fixed_point_type!(
    /// A processing load, in capacity units (micro-unit fixed point).
    ///
    /// The paper models system capacity as "the amount of work that can be
    /// executed in a time unit"; each operator `o_j` consumes `c_j` of it.
    Load,
    "Load"
);

fixed_point_type!(
    /// A monetary amount in dollars (micro-dollar fixed point): bids,
    /// valuations, payments, profits.
    Money,
    "Money"
);

impl Money {
    /// Builds a dollar amount from a float (alias of [`Money::from_units`]
    /// that reads better at call sites).
    #[inline]
    pub fn from_dollars(d: f64) -> Self {
        Self::from_units(d)
    }
}

impl Load {
    /// Builds a load from a float capacity-unit count (alias of
    /// [`Load::from_units`]).
    #[inline]
    pub fn from_capacity_units(u: f64) -> Self {
        Self::from_units(u)
    }
}

/// A profit density (bid per unit of load), represented exactly as the
/// rational `money / load` and compared via u128 cross-multiplication.
///
/// Zero-load densities compare as +∞ (they are ordered among themselves by
/// their `money` numerator), which matches the greedy mechanisms' behaviour:
/// a query whose model load is zero is maximally attractive.
#[derive(Clone, Copy, Debug)]
pub struct Density {
    /// Numerator: the bid.
    pub money: Money,
    /// Denominator: the (model) load.
    pub load: Load,
}

impl Density {
    /// Creates a density `money / load`.
    #[inline]
    pub fn new(money: Money, load: Load) -> Self {
        Self { money, load }
    }

    /// The density as a float dollars-per-unit-load value (for reporting).
    #[inline]
    pub fn as_f64(self) -> f64 {
        if self.load.is_zero() {
            f64::INFINITY
        } else {
            self.money.as_f64() / self.load.as_f64()
        }
    }
}

impl PartialEq for Density {
    fn eq(&self, other: &Self) -> bool {
        Ord::cmp(self, other) == Ordering::Equal
    }
}

impl Eq for Density {}

impl PartialOrd for Density {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(Ord::cmp(self, other))
    }
}

impl Ord for Density {
    /// Exact comparison via u128 cross-multiplication.
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.load.is_zero(), other.load.is_zero()) {
            (true, true) => self.money.cmp(&other.money),
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => {
                let lhs = self.money.micro() as u128 * other.load.micro() as u128;
                let rhs = other.money.micro() as u128 * self.load.micro() as u128;
                lhs.cmp(&rhs)
            }
        }
    }
}

/// Computes the payment `load_i × (money_l / load_l)` exactly in u128 and
/// floors to a micro-dollar: the per-unit-load price quoted from a rejected
/// query `l`, applied to winner `i`'s model load.
///
/// Returns [`Money::ZERO`] when `load_l` is zero (a zero-load loser quotes an
/// infinite density, which cannot arise from a capacity rejection: zero
/// marginal load always fits; defensively we charge nothing).
#[inline]
pub fn price_from_density(load_i: Load, money_l: Money, load_l: Load) -> Money {
    if load_l.is_zero() {
        return Money::ZERO;
    }
    let wide = load_i.micro() as u128 * money_l.micro() as u128 / load_l.micro() as u128;
    debug_assert!(wide <= u64::MAX as u128, "payment overflow");
    Money::from_micro(wide as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_round_trip() {
        let l = Load::from_units(4.5);
        assert_eq!(l.micro(), 4_500_000);
        assert!((l.as_f64() - 4.5).abs() < 1e-12);
        let m = Money::from_dollars(99.999_999);
        assert_eq!(m.micro(), 99_999_999);
    }

    #[test]
    fn arithmetic() {
        let a = Load::from_units(1.0);
        let b = Load::from_units(2.5);
        assert_eq!((a + b).as_f64(), 3.5);
        assert_eq!((b - a).as_f64(), 1.5);
        assert_eq!(b.saturating_sub(a + b), Load::ZERO);
        assert_eq!(a.checked_sub(b), None);
        assert_eq!(b.div_count(2).micro(), 1_250_000);
        assert_eq!(a.mul_count(3).as_f64(), 3.0);
    }

    #[test]
    #[should_panic(expected = "subtraction underflow")]
    fn sub_underflow_panics() {
        let _ = Load::from_units(1.0) - Load::from_units(2.0);
    }

    #[test]
    fn density_ordering_matches_floats() {
        // 55/5 = 11, 72/6 = 12, 100/10 = 10 — the paper's Example 1 (CAT).
        let d1 = Density::new(Money::from_dollars(55.0), Load::from_units(5.0));
        let d2 = Density::new(Money::from_dollars(72.0), Load::from_units(6.0));
        let d3 = Density::new(Money::from_dollars(100.0), Load::from_units(10.0));
        assert!(d2 > d1 && d1 > d3);
    }

    #[test]
    fn density_exact_ties() {
        let a = Density::new(Money::from_dollars(10.0), Load::from_units(2.0));
        let b = Density::new(Money::from_dollars(5.0), Load::from_units(1.0));
        assert_eq!(a, b);
    }

    #[test]
    fn density_zero_load_is_infinite() {
        let inf = Density::new(Money::from_dollars(0.000_001), Load::ZERO);
        let big = Density::new(Money::from_dollars(100.0), Load::EPSILON);
        assert!(inf > big);
        // Among zero-load densities, richer wins.
        let inf2 = Density::new(Money::from_dollars(2.0), Load::ZERO);
        assert!(inf2 > inf);
    }

    #[test]
    fn price_from_density_examples() {
        // CAT on Example 1: q1 pays CT_1 × b3/CT_3 = 5 × 100/10 = $50.
        let p = price_from_density(
            Load::from_units(5.0),
            Money::from_dollars(100.0),
            Load::from_units(10.0),
        );
        assert_eq!(p, Money::from_dollars(50.0));
        // CAF: q1 pays 3 × 100/10 = $30.
        let p = price_from_density(
            Load::from_units(3.0),
            Money::from_dollars(100.0),
            Load::from_units(10.0),
        );
        assert_eq!(p, Money::from_dollars(30.0));
        // Zero-load loser charges nothing.
        assert_eq!(
            price_from_density(Load::ONE, Money::from_dollars(5.0), Load::ZERO),
            Money::ZERO
        );
    }

    #[test]
    fn price_rounding_floors() {
        // 1 × 1/3 dollars = 0.333333 floored at micro precision.
        let p = price_from_density(Load::ONE, Money::from_dollars(1.0), Load::from_units(3.0));
        assert_eq!(p.micro(), 333_333);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Money::from_dollars(12.5)), "12.5");
        assert_eq!(format!("{:.2}", Money::from_dollars(12.5)), "12.50");
        assert_eq!(format!("{:?}", Load::from_units(2.0)), "Load(2)");
    }
}
