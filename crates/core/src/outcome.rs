//! Auction outcomes: who won, what they pay, and derived aggregates.

use crate::model::{AuctionInstance, QueryId};
use crate::units::{Load, Money};
use serde::{Deserialize, Serialize};

/// The result of running a mechanism on an [`AuctionInstance`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Outcome {
    /// Name of the mechanism that produced the outcome.
    pub mechanism: String,
    /// Admitted query ids, ascending.
    pub winners: Vec<QueryId>,
    /// Payment per query (indexed by [`QueryId`]); losers pay
    /// [`Money::ZERO`].
    pub payments: Vec<Money>,
    /// Distinct-union load of the winners (used server capacity).
    pub used_capacity: Load,
    /// Total number of submitted queries.
    pub num_queries: usize,
}

impl Outcome {
    /// Builds an outcome, computing `used_capacity` from the winner set.
    pub fn new(
        mechanism: &str,
        inst: &AuctionInstance,
        winners: Vec<QueryId>,
        payments: Vec<Money>,
    ) -> Self {
        debug_assert_eq!(payments.len(), inst.num_queries());
        let used_capacity = crate::model::union_load_of(inst, &winners);
        Self {
            mechanism: mechanism.to_string(),
            winners,
            payments,
            used_capacity,
            num_queries: inst.num_queries(),
        }
    }

    /// Whether query `q` was admitted.
    pub fn is_winner(&self, q: QueryId) -> bool {
        self.winners.binary_search(&q).is_ok()
    }

    /// Payment charged to `q` (zero for losers).
    pub fn payment(&self, q: QueryId) -> Money {
        self.payments.get(q.index()).copied().unwrap_or(Money::ZERO)
    }

    /// **Profit** — the sum of the payments of the admitted queries (§VI-A).
    pub fn profit(&self) -> Money {
        self.payments.iter().copied().sum()
    }

    /// **Admission rate** — the percentage of queries admitted (§VI-A).
    pub fn admission_rate(&self) -> f64 {
        if self.num_queries == 0 {
            0.0
        } else {
            100.0 * self.winners.len() as f64 / self.num_queries as f64
        }
    }

    /// The payoff `u_i = v_i − p_i` of one query given its true valuation
    /// (`0` for losers).
    pub fn payoff(&self, q: QueryId, valuation: Money) -> Money {
        if self.is_winner(q) {
            valuation.saturating_sub(self.payment(q))
        } else {
            Money::ZERO
        }
    }

    /// **Total user payoff** — `Σ_{winners} (v_i − p_i)`, where `v_i` is
    /// taken from `valuations` (indexed by query id). Under truthful bidding
    /// pass the instance bids. The paper reads this as total user
    /// satisfaction (§VI-A).
    pub fn total_payoff(&self, valuations: &[Money]) -> Money {
        self.winners
            .iter()
            .map(|&q| valuations[q.index()].saturating_sub(self.payment(q)))
            .sum()
    }

    /// **Total user payoff** under truthful bidding (valuations = bids).
    pub fn total_payoff_truthful(&self, inst: &AuctionInstance) -> Money {
        let valuations: Vec<Money> = inst.queries().iter().map(|q| q.bid).collect();
        self.total_payoff(&valuations)
    }

    /// **System utilization** — used capacity / total capacity, in `[0, 1]`
    /// (§VI-A reports it as a percentage).
    pub fn utilization(&self, inst: &AuctionInstance) -> f64 {
        if inst.capacity().is_zero() {
            0.0
        } else {
            self.used_capacity.as_f64() / inst.capacity().as_f64()
        }
    }

    /// Consistency checks every mechanism must satisfy:
    /// feasibility (winners fit in capacity), losers pay zero, payments are
    /// individually rational (`p_i ≤ b_i`). Used by tests and debug builds.
    pub fn validate(&self, inst: &AuctionInstance) -> Result<(), String> {
        if self.used_capacity > inst.capacity() {
            return Err(format!(
                "infeasible: used {} exceeds capacity {}",
                self.used_capacity,
                inst.capacity()
            ));
        }
        for q in inst.query_ids() {
            let p = self.payment(q);
            if self.is_winner(q) {
                if p > inst.bid(q) {
                    return Err(format!(
                        "winner {q} charged {p} above its bid {}",
                        inst.bid(q)
                    ));
                }
            } else if !p.is_zero() {
                return Err(format!("loser {q} charged {p}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::InstanceBuilder;

    fn tiny() -> AuctionInstance {
        let mut b = InstanceBuilder::new(Load::from_units(10.0));
        let a = b.operator(Load::from_units(4.0));
        let c = b.operator(Load::from_units(2.0));
        b.query(Money::from_dollars(10.0), &[a]);
        b.query(Money::from_dollars(20.0), &[a, c]);
        b.build().unwrap()
    }

    #[test]
    fn aggregates() {
        let inst = tiny();
        let out = Outcome::new(
            "test",
            &inst,
            vec![QueryId(0), QueryId(1)],
            vec![Money::from_dollars(4.0), Money::from_dollars(6.0)],
        );
        assert_eq!(out.profit(), Money::from_dollars(10.0));
        assert_eq!(out.admission_rate(), 100.0);
        assert_eq!(out.used_capacity, Load::from_units(6.0)); // shared op A
        assert_eq!(
            out.total_payoff_truthful(&inst),
            Money::from_dollars(6.0 + 14.0)
        );
        assert!((out.utilization(&inst) - 0.6).abs() < 1e-12);
        out.validate(&inst).unwrap();
    }

    #[test]
    fn validate_rejects_loser_payment() {
        let inst = tiny();
        let out = Outcome::new(
            "test",
            &inst,
            vec![QueryId(0)],
            vec![Money::ZERO, Money::from_dollars(1.0)],
        );
        assert!(out.validate(&inst).is_err());
    }

    #[test]
    fn validate_rejects_overcharge() {
        let inst = tiny();
        let out = Outcome::new(
            "test",
            &inst,
            vec![QueryId(0)],
            vec![Money::from_dollars(11.0), Money::ZERO],
        );
        assert!(out.validate(&inst).is_err());
    }

    #[test]
    fn payoff_of_loser_is_zero() {
        let inst = tiny();
        let out = Outcome::new(
            "test",
            &inst,
            vec![QueryId(0)],
            vec![Money::from_dollars(4.0), Money::ZERO],
        );
        assert_eq!(
            out.payoff(QueryId(1), Money::from_dollars(100.0)),
            Money::ZERO
        );
        assert_eq!(
            out.payoff(QueryId(0), Money::from_dollars(10.0)),
            Money::from_dollars(6.0)
        );
    }
}
