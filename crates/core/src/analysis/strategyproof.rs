//! Empirical (bid-)strategyproofness audits.
//!
//! §III: in a single-parameter setting, a mechanism is bid-strategyproof iff
//! its allocation is *monotone* (raising a winner's bid keeps her winning)
//! and every winner pays her *critical value* (the bid threshold between
//! losing and winning). These functions probe exactly those two conditions,
//! plus direct payoff-deviation search, on concrete instances.

use crate::mechanisms::Mechanism;
use crate::model::{AuctionInstance, QueryId};
use crate::units::Money;

/// Outcome of a bid-deviation search for one user.
#[derive(Clone, Debug)]
pub struct DeviationReport {
    /// The audited query.
    pub query: QueryId,
    /// The user's payoff when bidding her true valuation.
    pub truthful_payoff: Money,
    /// The best payoff found over all candidate deviations.
    pub best_payoff: Money,
    /// A deviation bid achieving `best_payoff` (equals the valuation when no
    /// profitable deviation exists).
    pub best_bid: Money,
}

impl DeviationReport {
    /// True when some deviation strictly beats truthful bidding — i.e. a
    /// counterexample to bid-strategyproofness.
    pub fn profitable(&self) -> bool {
        self.best_payoff > self.truthful_payoff
    }
}

/// Searches candidate deviations for `query`, whose true valuation is its
/// current bid, and reports the best one.
///
/// `candidates` should bracket interesting thresholds (other bids, densities
/// scaled by the query's load, ±ε around the truthful payment). For
/// randomized mechanisms, fix the seed per run: the audit then checks
/// per-coin-flip strategyproofness, which is what Theorem 10's proof gives.
pub fn best_bid_deviation(
    mech: &dyn Mechanism,
    inst: &AuctionInstance,
    query: QueryId,
    candidates: &[Money],
    seed: u64,
) -> DeviationReport {
    let valuation = inst.bid(query);
    let truthful = mech.run_seeded(inst, seed);
    let truthful_payoff = truthful.payoff(query, valuation);

    let mut best_payoff = truthful_payoff;
    let mut best_bid = valuation;
    for &bid in candidates {
        if bid == valuation {
            continue;
        }
        let deviated = inst.with_bid(query, bid);
        let out = mech.run_seeded(&deviated, seed);
        let payoff = out.payoff(query, valuation);
        if payoff > best_payoff {
            best_payoff = payoff;
            best_bid = bid;
        }
    }
    DeviationReport {
        query,
        truthful_payoff,
        best_payoff,
        best_bid,
    }
}

/// Default candidate bids for a deviation search on `query`: every other
/// query's bid (the places where priorities reorder), the truthful payment
/// ±2 µ$, half and double the valuation, and a near-zero bid.
pub fn default_candidates(
    inst: &AuctionInstance,
    query: QueryId,
    truthful_payment: Money,
) -> Vec<Money> {
    let mut c: Vec<Money> = inst.queries().iter().map(|q| q.bid).collect();
    let v = inst.bid(query);
    c.push(Money::from_micro(1));
    c.push(v.saturating_sub(Money::from_micro(2)));
    c.push(v + Money::from_micro(2));
    c.push(Money::from_micro(v.micro() / 2));
    c.push(v + v);
    if !truthful_payment.is_zero() {
        c.push(truthful_payment.saturating_sub(Money::from_micro(2)));
        c.push(truthful_payment + Money::from_micro(2));
    }
    c.sort_unstable();
    c.dedup();
    c
}

/// Checks allocation monotonicity for one winner: raising her bid to each of
/// the given higher bids must keep her winning. Returns the first violating
/// bid, if any.
pub fn check_monotonicity(
    mech: &dyn Mechanism,
    inst: &AuctionInstance,
    winner: QueryId,
    raises: &[Money],
    seed: u64,
) -> Option<Money> {
    debug_assert!(mech.run_seeded(inst, seed).is_winner(winner));
    for &bid in raises {
        if bid <= inst.bid(winner) {
            continue;
        }
        let out = mech.run_seeded(&inst.with_bid(winner, bid), seed);
        if !out.is_winner(winner) {
            return Some(bid);
        }
    }
    None
}

/// Audits critical-value payments for every winner: bidding 2 µ$ above the
/// charged payment must win; bidding 2 µ$ below must lose (payments are
/// floored to the micro-dollar, hence the 2 µ$ guard band). Returns the
/// queries that violate either direction.
///
/// Winners charged zero are only audited upward (they may win at any bid).
pub fn audit_critical_values(
    mech: &dyn Mechanism,
    inst: &AuctionInstance,
    seed: u64,
) -> Vec<QueryId> {
    let out = mech.run_seeded(inst, seed);
    let mut violations = Vec::new();
    for &w in &out.winners {
        let p = out.payment(w);
        let above = p + Money::from_micro(2);
        let probe = mech.run_seeded(&inst.with_bid(w, above), seed);
        if !probe.is_winner(w) {
            violations.push(w);
            continue;
        }
        if !p.is_zero() {
            let below = p.saturating_sub(Money::from_micro(2));
            let probe = mech.run_seeded(&inst.with_bid(w, below), seed);
            if probe.is_winner(w) {
                violations.push(w);
            }
        }
    }
    violations
}

/// Audits the single-minded-bidder monotonicity of §III (after Lehmann et
/// al.): every winner who re-submits a *strict subset* of her operators must
/// remain a winner. Returns `(query, dropped_operator)` pairs that violate
/// it.
///
/// This is the "not only bid-strategyproof but strategyproof" condition the
/// paper claims for CAF/CAF+/CAT/CAT+: misreporting the operator set
/// (beyond the bid) must not help either.
pub fn audit_operator_monotonicity(
    mech: &dyn Mechanism,
    inst: &AuctionInstance,
    seed: u64,
) -> Vec<(QueryId, crate::model::OperatorId)> {
    let out = mech.run_seeded(inst, seed);
    let mut violations = Vec::new();
    for &w in &out.winners {
        let ops = inst.query(w).operators.clone();
        if ops.len() < 2 {
            continue;
        }
        for drop in &ops {
            let subset: Vec<_> = ops.iter().copied().filter(|o| o != drop).collect();
            let probe_inst = inst.with_query_operators(w, &subset);
            let probe = mech.run_seeded(&probe_inst, seed);
            if !probe.is_winner(w) {
                violations.push((w, *drop));
            }
        }
    }
    violations
}

/// Audits operator-set *inflation*: can a user gain by padding her query
/// with extra operators she does not need (the §III "adding additional
/// operators that are not part of the query she actually desires")? Returns
/// the best payoff improvement found, if any, as
/// `(query, added_operator, gain)`.
pub fn best_operator_padding(
    mech: &dyn Mechanism,
    inst: &AuctionInstance,
    query: QueryId,
    seed: u64,
) -> Option<(QueryId, crate::model::OperatorId, Money)> {
    let valuation = inst.bid(query);
    let truthful = mech.run_seeded(inst, seed).payoff(query, valuation);
    let own: Vec<_> = inst.query(query).operators.clone();
    let mut best: Option<(QueryId, crate::model::OperatorId, Money)> = None;
    for op in inst.operators() {
        if own.contains(&op.id) {
            continue;
        }
        let mut padded = own.clone();
        padded.push(op.id);
        let probe_inst = inst.with_query_operators(query, &padded);
        let payoff = mech.run_seeded(&probe_inst, seed).payoff(query, valuation);
        if payoff > truthful {
            let gain = payoff - truthful;
            if best.as_ref().is_none_or(|(_, _, g)| gain > *g) {
                best = Some((query, op.id, gain));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::examples::example1;
    use crate::mechanisms::{Caf, Car, Cat, Gv};
    use crate::units::Money;

    #[test]
    fn car_has_a_profitable_deviation_in_example1() {
        let inst = example1();
        let q2 = QueryId(1);
        let candidates = default_candidates(&inst, q2, Money::from_dollars(60.0));
        let report = best_bid_deviation(&Car::default(), &inst, q2, &candidates, 0);
        assert!(report.profitable(), "CAR must be manipulable (§IV-A)");
    }

    #[test]
    fn caf_cat_gv_have_no_profitable_deviation_in_example1() {
        let inst = example1();
        for mech in [&Caf as &dyn Mechanism, &Cat, &Gv] {
            for q in inst.query_ids() {
                let truthful = mech.run_seeded(&inst, 0);
                let candidates = default_candidates(&inst, q, truthful.payment(q));
                let report = best_bid_deviation(mech, &inst, q, &candidates, 0);
                assert!(
                    !report.profitable(),
                    "{} manipulable by {q}: bid {} gains {} over {}",
                    mech.name(),
                    report.best_bid,
                    report.best_payoff,
                    report.truthful_payoff
                );
            }
        }
    }

    #[test]
    fn cat_payments_are_critical_values_in_example1() {
        let inst = example1();
        assert!(audit_critical_values(&Cat, &inst, 0).is_empty());
        assert!(audit_critical_values(&Caf, &inst, 0).is_empty());
    }

    #[test]
    fn cat_is_monotone_in_example1() {
        let inst = example1();
        let raises: Vec<Money> = (1..=20)
            .map(|i| Money::from_dollars(10.0 * i as f64))
            .collect();
        for w in [QueryId(0), QueryId(1)] {
            assert_eq!(check_monotonicity(&Cat, &inst, w, &raises, 0), None);
        }
    }

    #[test]
    fn smb_monotonicity_holds_in_example1() {
        // §III: winners re-submitting operator subsets must keep winning —
        // the condition that upgrades bid-strategyproofness to full
        // strategyproofness for CAF and CAT.
        let inst = example1();
        for mech in [&Caf as &dyn Mechanism, &Cat, &Gv] {
            assert!(
                audit_operator_monotonicity(mech, &inst, 0).is_empty(),
                "{} violated operator-subset monotonicity",
                mech.name()
            );
        }
    }

    #[test]
    fn padding_does_not_pay_in_example1() {
        // Lying upward about the operator set (adding operators) must not
        // improve any user's payoff under the strategyproof mechanisms.
        let inst = example1();
        for mech in [&Caf as &dyn Mechanism, &Cat, &Gv] {
            for q in inst.query_ids() {
                assert!(
                    best_operator_padding(mech, &inst, q, 0).is_none(),
                    "{}: {q} gains by padding its operator set",
                    mech.name()
                );
            }
        }
    }
}
