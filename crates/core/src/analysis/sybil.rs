//! Sybil attacks (§V): forging extra no-value queries to manipulate the
//! mechanism, and the bookkeeping to decide whether an attack paid off.
//!
//! The attacker's payoff aggregates over all her identities: she keeps her
//! real query's payoff (valuation − payment if admitted) but must pay the
//! charges of any *fake* query the mechanism admits (the fakes have zero
//! value to her).

use crate::mechanisms::Mechanism;
use crate::model::{AuctionInstance, OperatorId, QueryId, UserId};
use crate::units::{Load, Money};
use rand::{Rng, RngExt};

/// A prepared sybil attack: the attacked instance plus the id mapping.
#[derive(Clone, Debug)]
pub struct SybilAttack {
    /// The instance including the fake queries.
    pub attacked: AuctionInstance,
    /// The attacker's real query (same id in both instances — fakes are
    /// appended after all original queries).
    pub attacker: QueryId,
    /// Ids of the fake queries within [`SybilAttack::attacked`].
    pub fakes: Vec<QueryId>,
}

/// The attacker's position before and after an attack.
#[derive(Clone, Debug)]
pub struct AttackOutcome {
    /// Aggregate payoff without attacking (her true valuation is her
    /// original bid).
    pub baseline_payoff: Money,
    /// Aggregate payoff with the fakes present: real-query payoff minus the
    /// sum of admitted fakes' payments. Saturates at zero from below — see
    /// [`AttackOutcome::fake_charges`] for the raw numbers.
    pub attack_payoff: Money,
    /// What the fakes cost the attacker.
    pub fake_charges: Money,
    /// Whether the real query was admitted under attack.
    pub attacker_won: bool,
}

impl AttackOutcome {
    /// True when the attack strictly increased the attacker's payoff —
    /// i.e. the mechanism is *vulnerable* on this instance (Definition 13).
    pub fn succeeded(&self) -> bool {
        self.attack_payoff > self.baseline_payoff
    }
}

/// Runs `mech` with and without the attack and accounts the attacker's
/// aggregate payoff (Definition 16's accounting).
pub fn attacker_payoff(
    mech: &dyn Mechanism,
    original: &AuctionInstance,
    attack: &SybilAttack,
    seed: u64,
) -> AttackOutcome {
    let valuation = original.bid(attack.attacker);

    let baseline = mech.run_seeded(original, seed);
    let baseline_payoff = baseline.payoff(attack.attacker, valuation);

    let attacked = mech.run_seeded(&attack.attacked, seed);
    let real_payoff = attacked.payoff(attack.attacker, valuation);
    let fake_charges: Money = attack.fakes.iter().map(|&f| attacked.payment(f)).sum();

    AttackOutcome {
        baseline_payoff,
        attack_payoff: real_payoff.saturating_sub(fake_charges),
        fake_charges,
        attacker_won: attacked.is_winner(attack.attacker),
    }
}

/// The Theorem 15 construction against the fair-share mechanisms: fake
/// users with negligible bids whose queries share (all of) the attacker's
/// operators. Each fake inflates every shared operator's degree, deflating
/// the attacker's static fair-share load — raising her priority and cutting
/// her payment — while the fakes' own priorities are negligible.
pub fn fair_share_attack(
    inst: &AuctionInstance,
    attacker: QueryId,
    num_fakes: usize,
) -> SybilAttack {
    let ops: Vec<OperatorId> = inst.query(attacker).operators.clone();
    let user = inst.query(attacker).user;
    let fake_bid = Money::from_micro(1);
    let first_fake = inst.num_queries() as u32;
    let new_queries = (0..num_fakes)
        .map(|_| (user, fake_bid, ops.clone()))
        .collect();
    let attacked = inst.with_extra_queries(Vec::new(), new_queries);
    SybilAttack {
        attacked,
        attacker,
        fakes: (0..num_fakes as u32)
            .map(|k| QueryId(first_fake + k))
            .collect(),
    }
}

/// The paper's Table II instance: user 2 beats CAT+ by forging "user 3".
///
/// Capacity 1. Real queries: `q0` (v=100, load 1), `q1` (v=89, load 0.9).
/// The fake `q2` (v=100ε+ε, load ε) outranks `q0` in density, crowds it out
/// of the skip-fill, and lets `q1` in — for a fake charge of only `100ε`.
/// Returns `(instance_without_fake, attack)` with ε = 0.01.
pub fn table2_attack() -> (AuctionInstance, SybilAttack) {
    use crate::model::InstanceBuilder;
    let eps = 0.01;
    let mut b = InstanceBuilder::new(Load::from_units(1.0));
    let x = b.operator(Load::from_units(1.0));
    let y = b.operator(Load::from_units(0.9));
    b.query(Money::from_dollars(100.0), &[x]);
    b.query(Money::from_dollars(89.0), &[y]);
    let original = b.build().unwrap();

    let attacker = QueryId(1);
    let user = original.query(attacker).user;
    let attacked = original.with_extra_queries(
        vec![Load::from_units(eps)],
        vec![(
            user,
            Money::from_dollars(100.0 * eps + eps),
            vec![OperatorId(2)],
        )],
    );
    (
        original,
        SybilAttack {
            attacked,
            attacker,
            fakes: vec![QueryId(2)],
        },
    )
}

/// A randomized attack for immunity testing: `num_fakes` fake queries with
/// near-zero bids, each using a random non-empty subset of the attacker's
/// operators and (optionally) a fresh private operator of tiny load.
pub fn random_sybil_attack(
    inst: &AuctionInstance,
    attacker: QueryId,
    num_fakes: usize,
    rng: &mut dyn Rng,
) -> SybilAttack {
    let ops = &inst.query(attacker).operators;
    let user = inst.query(attacker).user;
    let mut new_operators = Vec::new();
    let mut new_queries = Vec::new();
    let next_op = inst.num_operators() as u32;
    for _ in 0..num_fakes {
        let mut fake_ops: Vec<OperatorId> = ops
            .iter()
            .copied()
            .filter(|_| rng.random_bool(0.5))
            .collect();
        if fake_ops.is_empty() {
            fake_ops.push(ops[rng.random_range(0..ops.len())]);
        }
        if rng.random_bool(0.3) {
            let id = OperatorId(next_op + new_operators.len() as u32);
            new_operators.push(Load::from_micro(rng.random_range(1..10_000)));
            fake_ops.push(id);
        }
        let bid = Money::from_micro(rng.random_range(1..100));
        new_queries.push((user, bid, fake_ops));
    }
    let first_fake = inst.num_queries() as u32;
    let attacked = inst.with_extra_queries(new_operators, new_queries);
    SybilAttack {
        attacked,
        attacker,
        fakes: (0..num_fakes as u32)
            .map(|k| QueryId(first_fake + k))
            .collect(),
    }
}

/// Builds a `UserId`-keyed aggregate payoff for arbitrary multi-identity
/// accounting: sums `valuation − payment` over every winning query the user
/// owns, where each query's valuation is supplied by the caller (zero for
/// fakes).
pub fn user_aggregate_payoff(
    inst: &AuctionInstance,
    outcome: &crate::outcome::Outcome,
    user: UserId,
    valuations: &[Money],
) -> (Money, Money) {
    let mut gain = Money::ZERO;
    let mut charges = Money::ZERO;
    for q in inst.query_ids() {
        if inst.query(q).user == user && outcome.is_winner(q) {
            gain += valuations[q.index()];
            charges += outcome.payment(q);
        }
    }
    (gain, charges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::examples::example1;
    use crate::mechanisms::{Caf, Cat, CatPlus, Mechanism};

    #[test]
    fn table2_attack_beats_cat_plus() {
        let (original, attack) = table2_attack();
        let out = attacker_payoff(&CatPlus::default(), &original, &attack, 0);
        assert!(!mech_wins_baseline(
            &CatPlus::default(),
            &original,
            attack.attacker
        ));
        assert!(out.attacker_won, "the fake must crowd q0 out");
        assert!(out.succeeded(), "Theorem 17: CAT+ is vulnerable");
        // The fake pays 100ε = $1, far less than the $89 payoff gained.
        assert_eq!(out.fake_charges, Money::from_dollars(1.0));
        assert_eq!(out.attack_payoff, Money::from_dollars(88.0));
    }

    fn mech_wins_baseline(mech: &dyn Mechanism, inst: &AuctionInstance, q: QueryId) -> bool {
        mech.run_seeded(inst, 0).is_winner(q)
    }

    #[test]
    fn fair_share_attack_cuts_caf_payment() {
        // Theorem 15: in Example 1, q2 truthfully pays $40 under CAF; with
        // fakes sharing her operators her fair share shrinks and so does her
        // payment.
        let inst = example1();
        let attack = fair_share_attack(&inst, QueryId(1), 8);
        let out = attacker_payoff(&Caf, &inst, &attack, 0);
        assert!(out.attacker_won);
        assert!(out.succeeded(), "CAF must be sybil-vulnerable");
    }

    #[test]
    fn cat_resists_the_fair_share_attack() {
        // Theorem 19: total loads ignore sharing degrees, so the same attack
        // gains nothing under CAT.
        let inst = example1();
        for fakes in [1, 4, 8] {
            let attack = fair_share_attack(&inst, QueryId(1), fakes);
            let out = attacker_payoff(&Cat, &inst, &attack, 0);
            assert!(!out.succeeded(), "CAT must be sybil-immune");
        }
    }

    #[test]
    fn random_attacks_never_beat_cat_in_example1() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let inst = example1();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            for q in inst.query_ids() {
                let attack = random_sybil_attack(&inst, q, 1 + (q.index() % 3), &mut rng);
                let out = attacker_payoff(&Cat, &inst, &attack, 0);
                assert!(
                    !out.succeeded(),
                    "random sybil attack on {q} beat CAT: {out:?}"
                );
            }
        }
    }
}
