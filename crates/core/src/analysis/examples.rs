//! The paper's worked examples as reusable instance constructors — shared by
//! unit tests, property tests, examples, and the documentation.

use crate::model::{AuctionInstance, InstanceBuilder, OperatorId};
use crate::units::{Load, Money};

/// Example 1 (Figures 1–2): a DSMS with capacity 10 and three queries —
/// `q1 = {A, B}` bidding $55, `q2 = {A, C}` bidding $72, `q3 = {D, E}`
/// bidding $100 — where operator `A` (load 4) is shared between `q1` and
/// `q2`. Loads: A=4, B=1, C=2, D=7, E=3.
///
/// Expected outcomes (worked in §IV):
///
/// | Mechanism | Winners | Payments |
/// |-----------|---------|----------|
/// | CAR | q1, q2 | $10, $60 |
/// | CAF | q1, q2 | $30, $40 |
/// | CAT | q1, q2 | $50, $60 |
pub fn example1() -> AuctionInstance {
    let mut b = InstanceBuilder::new(Load::from_units(10.0));
    let a = b.operator(Load::from_units(4.0));
    let ob = b.operator(Load::from_units(1.0));
    let c = b.operator(Load::from_units(2.0));
    let d = b.operator(Load::from_units(7.0));
    let e = b.operator(Load::from_units(3.0));
    b.query(Money::from_dollars(55.0), &[a, ob]);
    b.query(Money::from_dollars(72.0), &[a, c]);
    b.query(Money::from_dollars(100.0), &[d, e]);
    b.build().expect("example 1 is well-formed")
}

/// The operator ids of [`example1`] in declaration order (A, B, C, D, E).
pub fn example1_operators() -> [OperatorId; 5] {
    [
        OperatorId(0),
        OperatorId(1),
        OperatorId(2),
        OperatorId(3),
        OperatorId(4),
    ]
}

/// A no-sharing "knapsack auction" instance: `loads_and_bids[i]` becomes a
/// single-operator query. In this special case every mechanism's load models
/// coincide and the paper's setting reduces to Aggarwal–Hartline knapsack
/// auctions (§III) — the regime where the strategyproofness proofs are
/// airtight, used heavily by the property tests.
pub fn knapsack_instance(capacity: f64, loads_and_bids: &[(f64, f64)]) -> AuctionInstance {
    let mut b = InstanceBuilder::new(Load::from_units(capacity));
    for &(load, bid) in loads_and_bids {
        let op = b.operator(Load::from_units(load));
        b.query(Money::from_dollars(bid), &[op]);
    }
    b.build().expect("knapsack instance is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example1_shape() {
        let inst = example1();
        assert_eq!(inst.num_queries(), 3);
        assert_eq!(inst.num_operators(), 5);
        assert_eq!(inst.capacity(), Load::from_units(10.0));
    }

    #[test]
    fn knapsack_instance_has_no_sharing() {
        let inst = knapsack_instance(10.0, &[(1.0, 2.0), (3.0, 4.0)]);
        assert_eq!(inst.max_degree_of_sharing(), 1);
        for q in inst.query_ids() {
            assert_eq!(inst.total_load(q), inst.fair_share_load(q));
        }
    }
}
