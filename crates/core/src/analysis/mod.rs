//! Game-theoretic analysis harness: empirical checks of the paper's
//! theorems (§III characterizations, §V sybil attacks).
//!
//! The paper *proves* its mechanisms (bid-)strategyproof and classifies
//! their sybil immunity; this module provides the machinery to *audit* those
//! claims on concrete instances — deviation testing, monotonicity probes,
//! critical-value payment checks, and constructive sybil attacks. The
//! `table1` experiment in `cqac-sim` aggregates these audits into the
//! reproduction of Table I / Table V.

pub mod examples;
pub mod strategyproof;
pub mod sybil;
pub mod welfare;

pub use strategyproof::{
    audit_critical_values, audit_operator_monotonicity, best_bid_deviation, best_operator_padding,
    check_monotonicity, DeviationReport,
};
pub use sybil::{
    attacker_payoff, fair_share_attack, random_sybil_attack, table2_attack, AttackOutcome,
    SybilAttack,
};
pub use welfare::{optimal_welfare, welfare_of, WelfareOptimum};
