//! Exact optimal winner determination — the welfare benchmark.
//!
//! §III notes that selecting the value-maximal feasible query set under
//! shared operators generalizes the densest-subgraph problem and is hard to
//! approximate; the greedy mechanisms make no welfare guarantee. For small
//! instances we can still compute the optimum exactly by branch-and-bound
//! and *measure* the greedy mechanisms' efficiency loss ("price of
//! greedy"). Used by tests and ablation reports; exponential in the worst
//! case, so guarded by a size limit.

use crate::model::{AdmittedSet, AuctionInstance, QueryId};
use crate::units::Money;

/// The exact welfare optimum: the feasible winner set maximizing the sum of
/// (truthful) bids.
#[derive(Clone, Debug)]
pub struct WelfareOptimum {
    /// A value-maximal feasible winner set (ties broken arbitrarily).
    pub winners: Vec<QueryId>,
    /// Its total value.
    pub welfare: Money,
}

/// Total bid value of a winner set.
pub fn welfare_of(inst: &AuctionInstance, winners: &[QueryId]) -> Money {
    winners.iter().map(|&q| inst.bid(q)).sum()
}

/// Computes the exact optimum by depth-first branch-and-bound over queries
/// sorted by descending bid (bound: accepted value + all remaining bids).
/// Returns `None` when the instance exceeds `max_queries` (the search is
/// exponential in the worst case).
pub fn optimal_welfare(inst: &AuctionInstance, max_queries: usize) -> Option<WelfareOptimum> {
    struct Search<'a> {
        inst: &'a AuctionInstance,
        order: &'a [QueryId],
        suffix_value: &'a [Money],
        state: AdmittedSet<'a>,
        chosen: Vec<QueryId>,
        best: Vec<QueryId>,
        best_value: Money,
        current_value: Money,
    }

    impl Search<'_> {
        fn run(&mut self, depth: usize) {
            if self.current_value > self.best_value {
                self.best_value = self.current_value;
                self.best = self.chosen.clone();
            }
            if depth == self.order.len() {
                return;
            }
            // Bound: even taking everything left cannot beat the best.
            if self.current_value + self.suffix_value[depth] <= self.best_value {
                return;
            }
            let q = self.order[depth];
            // Branch 1: take q if it fits.
            if self.state.fits(q) {
                self.state.admit(q);
                self.chosen.push(q);
                self.current_value += self.inst.bid(q);
                self.run(depth + 1);
                self.current_value -= self.inst.bid(q);
                self.chosen.pop();
                self.state.withdraw(q);
            }
            // Branch 2: skip q.
            self.run(depth + 1);
        }
    }

    let n = inst.num_queries();
    if n > max_queries {
        return None;
    }
    // Order by descending bid so the additive bound tightens fast.
    let mut order: Vec<QueryId> = inst.query_ids().collect();
    order.sort_by(|&a, &b| inst.bid(b).cmp(&inst.bid(a)).then_with(|| a.cmp(&b)));
    // suffix_value[i] = total value of order[i..].
    let mut suffix_value = vec![Money::ZERO; n + 1];
    for i in (0..n).rev() {
        suffix_value[i] = suffix_value[i + 1] + inst.bid(order[i]);
    }

    let mut search = Search {
        inst,
        order: &order,
        suffix_value: &suffix_value,
        state: AdmittedSet::new(inst),
        chosen: Vec::new(),
        best: Vec::new(),
        best_value: Money::ZERO,
        current_value: Money::ZERO,
    };
    search.run(0);
    let mut winners = search.best;
    winners.sort_unstable();
    Some(WelfareOptimum {
        winners,
        welfare: search.best_value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::examples::example1;
    use crate::mechanisms::{Cat, Mechanism};
    use crate::model::InstanceBuilder;
    use crate::units::Load;

    #[test]
    fn example1_optimum_is_q1_q2() {
        let inst = example1();
        let opt = optimal_welfare(&inst, 16).unwrap();
        assert_eq!(opt.winners, vec![QueryId(0), QueryId(1)]);
        assert_eq!(opt.welfare, Money::from_dollars(127.0));
        // CAT happens to find the optimum here.
        let cat = Cat.run_seeded(&inst, 0);
        assert_eq!(welfare_of(&inst, &cat.winners), opt.welfare);
    }

    #[test]
    fn sharing_can_beat_the_obvious_pick() {
        // Capacity 10. One heavy shared operator S (load 9) carried by three
        // $40 queries; one independent $100 query of load 10. Optimal:
        // 3 × $40 = $120 > $100 — the optimum *requires* exploiting sharing.
        let mut b = InstanceBuilder::new(Load::from_units(10.0));
        let s = b.operator(Load::from_units(9.0));
        for _ in 0..3 {
            b.query(Money::from_dollars(40.0), &[s]);
        }
        let big = b.operator(Load::from_units(10.0));
        b.query(Money::from_dollars(100.0), &[big]);
        let inst = b.build().unwrap();
        let opt = optimal_welfare(&inst, 16).unwrap();
        assert_eq!(opt.welfare, Money::from_dollars(120.0));
        assert_eq!(opt.winners.len(), 3);
    }

    #[test]
    fn size_limit_guards_exponential_blowup() {
        let inst = example1();
        assert!(optimal_welfare(&inst, 2).is_none());
    }

    #[test]
    fn greedy_never_beats_the_optimum() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let n_ops = rng.random_range(2..8);
            let mut b = InstanceBuilder::new(Load::from_units(rng.random_range(5.0..20.0)));
            let ops: Vec<_> = (0..n_ops)
                .map(|_| b.operator(Load::from_units(rng.random_range(1.0..6.0))))
                .collect();
            for _ in 0..rng.random_range(2..10) {
                let k = rng.random_range(1..=2.min(n_ops));
                let set: Vec<_> = (0..k).map(|_| ops[rng.random_range(0..n_ops)]).collect();
                b.query(Money::from_dollars(rng.random_range(1.0..50.0)), &set);
            }
            let inst = b.build().unwrap();
            let opt = optimal_welfare(&inst, 12).unwrap();
            for mech in crate::mechanisms::all_mechanisms() {
                let out = mech.run_seeded(&inst, 1);
                assert!(
                    welfare_of(&inst, &out.winners) <= opt.welfare,
                    "{} exceeded the optimum?!",
                    mech.name()
                );
            }
        }
    }
}
