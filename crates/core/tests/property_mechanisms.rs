//! Property-based tests over randomly generated shared-operator instances.
//!
//! Universal invariants (every mechanism, any instance):
//! * feasibility — winners' distinct-union load fits in capacity;
//! * losers pay zero; winners pay at most their bid (individual rationality).
//!
//! Knapsack-regime invariants (no sharing — the §III special case where the
//! strategyproofness proofs are airtight): monotonicity, critical-value
//! payments, no profitable bid deviation, CAF ≡ CAT.
//!
//! Implementation-equivalence invariants: movement-window Naive ≡ Snapshot,
//! CAR Naive ≡ Indexed.
//!
//! Sybil invariants: CAT never loses to the Theorem 15 construction or to
//! randomized attacks.

use cqac_core::analysis::strategyproof::{best_bid_deviation, default_candidates};
use cqac_core::analysis::sybil::{attacker_payoff, fair_share_attack, random_sybil_attack};
use cqac_core::mechanisms::{
    all_mechanisms, Caf, CafPlus, Car, Cat, CatPlus, Gv, Mechanism, MovementWindowMode,
};
use cqac_core::model::{AuctionInstance, InstanceBuilder, QueryId};
use cqac_core::units::{Load, Money};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a shared-operator instance with `n_ops` operators of random
/// loads and `n_queries` queries of 1..=3 random operators each.
fn shared_instance() -> impl Strategy<Value = AuctionInstance> {
    (2usize..10, 2usize..14, 4u32..40)
        .prop_flat_map(|(n_ops, n_queries, capacity)| {
            let loads = proptest::collection::vec(1u32..=8, n_ops);
            let queries = proptest::collection::vec(
                (proptest::collection::vec(0..n_ops, 1..=3), 1u32..=100),
                n_queries,
            );
            (Just(capacity), loads, queries)
        })
        .prop_map(|(capacity, loads, queries)| {
            let mut b = InstanceBuilder::new(Load::from_units(f64::from(capacity)));
            let ops: Vec<_> = loads
                .iter()
                .map(|&l| b.operator(Load::from_units(f64::from(l))))
                .collect();
            for (op_idxs, bid) in queries {
                let set: Vec<_> = op_idxs.iter().map(|&i| ops[i]).collect();
                b.query(Money::from_dollars(f64::from(bid)), &set);
            }
            b.build().expect("generated instance is valid")
        })
}

/// Strategy: a no-sharing (knapsack) instance.
fn knapsack_instance() -> impl Strategy<Value = AuctionInstance> {
    (2usize..14, 4u32..40)
        .prop_flat_map(|(n, capacity)| {
            let items = proptest::collection::vec((1u32..=8, 1u32..=100), n);
            (Just(capacity), items)
        })
        .prop_map(|(capacity, items)| {
            let mut b = InstanceBuilder::new(Load::from_units(f64::from(capacity)));
            for (load, bid) in items {
                let op = b.operator(Load::from_units(f64::from(load)));
                b.query(Money::from_dollars(f64::from(bid)), &[op]);
            }
            b.build().expect("generated instance is valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every mechanism produces a feasible, individually rational outcome.
    #[test]
    fn outcomes_are_valid(inst in shared_instance(), seed in 0u64..1000) {
        for mech in all_mechanisms() {
            let out = mech.run_seeded(&inst, seed);
            prop_assert!(out.validate(&inst).is_ok(),
                "{} produced an invalid outcome: {:?}",
                mech.name(), out.validate(&inst));
            prop_assert!(out.used_capacity <= inst.capacity());
        }
    }

    /// Movement-window payments: the quadratic re-simulation and the
    /// incremental snapshot compute identical results.
    #[test]
    fn movement_window_modes_agree(inst in shared_instance()) {
        let naive_caf = CafPlus::with_mode(MovementWindowMode::Naive).run_seeded(&inst, 0);
        let snap_caf = CafPlus::with_mode(MovementWindowMode::Snapshot).run_seeded(&inst, 0);
        prop_assert_eq!(&naive_caf.winners, &snap_caf.winners);
        prop_assert_eq!(&naive_caf.payments, &snap_caf.payments);

        let naive_cat = CatPlus::with_mode(MovementWindowMode::Naive).run_seeded(&inst, 0);
        let snap_cat = CatPlus::with_mode(MovementWindowMode::Snapshot).run_seeded(&inst, 0);
        prop_assert_eq!(&naive_cat.winners, &snap_cat.winners);
        prop_assert_eq!(&naive_cat.payments, &snap_cat.payments);
    }

    /// CAR's naive and indexed engines are byte-identical.
    #[test]
    fn car_engines_agree(inst in shared_instance()) {
        let naive = Car::naive().run_seeded(&inst, 0);
        let indexed = Car::default().run_seeded(&inst, 0);
        prop_assert_eq!(&naive.winners, &indexed.winners);
        prop_assert_eq!(&naive.payments, &indexed.payments);
    }

    /// In the knapsack regime the fair-share and total loads coincide, so
    /// CAF and CAT must be identical mechanisms (and likewise CAF+/CAT+).
    #[test]
    fn caf_equals_cat_without_sharing(inst in knapsack_instance()) {
        let caf = Caf.run_seeded(&inst, 0);
        let cat = Cat.run_seeded(&inst, 0);
        prop_assert_eq!(&caf.winners, &cat.winners);
        prop_assert_eq!(&caf.payments, &cat.payments);
        let cafp = CafPlus::default().run_seeded(&inst, 0);
        let catp = CatPlus::default().run_seeded(&inst, 0);
        prop_assert_eq!(&cafp.winners, &catp.winners);
        prop_assert_eq!(&cafp.payments, &catp.payments);
    }

    /// Knapsack-regime bid-strategyproofness: no deviation beats truth for
    /// the mechanisms the paper proves strategyproof.
    #[test]
    fn knapsack_strategyproofness(inst in knapsack_instance()) {
        let mechanisms: Vec<Box<dyn Mechanism>> = vec![
            Box::new(Caf),
            Box::new(Cat),
            Box::new(CafPlus::default()),
            Box::new(CatPlus::default()),
            Box::new(Gv),
        ];
        for mech in &mechanisms {
            let truthful = mech.run_seeded(&inst, 0);
            for q in inst.query_ids() {
                let candidates = default_candidates(&inst, q, truthful.payment(q));
                let report = best_bid_deviation(mech.as_ref(), &inst, q, &candidates, 0);
                prop_assert!(
                    !report.profitable(),
                    "{}: query {q} gains {} over {} by bidding {}",
                    mech.name(),
                    report.best_payoff,
                    report.truthful_payoff,
                    report.best_bid
                );
            }
        }
    }

    /// Knapsack-regime monotonicity: a winner who raises her bid stays a
    /// winner.
    #[test]
    fn knapsack_monotonicity(inst in knapsack_instance(), raise in 1u32..=200) {
        for mech in [&Caf as &dyn Mechanism, &Cat, &Gv] {
            let out = mech.run_seeded(&inst, 0);
            for &w in &out.winners {
                let higher = inst.bid(w) + Money::from_dollars(f64::from(raise));
                let probe = mech.run_seeded(&inst.with_bid(w, higher), 0);
                prop_assert!(
                    probe.is_winner(w),
                    "{}: winner {w} lost by raising bid to {higher}",
                    mech.name()
                );
            }
        }
    }

    /// CAT survives the Theorem 15 construction and randomized sybil
    /// attacks on arbitrary shared instances (Theorem 19).
    #[test]
    fn cat_is_sybil_immune(inst in shared_instance(), fakes in 1usize..6, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        for q in inst.query_ids() {
            let attack = fair_share_attack(&inst, q, fakes);
            let out = attacker_payoff(&Cat, &inst, &attack, 0);
            prop_assert!(!out.succeeded(),
                "fair-share sybil attack on {q} beat CAT: {out:?}");

            let attack = random_sybil_attack(&inst, q, fakes, &mut rng);
            let out = attacker_payoff(&Cat, &inst, &attack, 0);
            prop_assert!(!out.succeeded(),
                "random sybil attack on {q} beat CAT: {out:?}");
        }
    }

    /// GV charges a constant price: every winner pays the same amount (the
    /// first loser's bid), or zero when everyone fits.
    #[test]
    fn gv_is_constant_priced(inst in shared_instance()) {
        let out = Gv.run_seeded(&inst, 0);
        let prices: Vec<Money> = out.winners.iter().map(|&w| out.payment(w)).collect();
        if let Some(first) = prices.first() {
            prop_assert!(prices.iter().all(|p| p == first));
        }
    }

    /// The stop-fill mechanisms (CAF/CAT) never admit more *capacity* than
    /// the skip-fill variants on the same load model.
    #[test]
    fn plus_variants_admit_supersets(inst in shared_instance()) {
        let caf = Caf.run_seeded(&inst, 0);
        let cafp = CafPlus::default().run_seeded(&inst, 0);
        for w in &caf.winners {
            prop_assert!(cafp.is_winner(*w), "CAF winner {w} missing from CAF+");
        }
        let cat = Cat.run_seeded(&inst, 0);
        let catp = CatPlus::default().run_seeded(&inst, 0);
        for w in &cat.winners {
            prop_assert!(catp.is_winner(*w), "CAT winner {w} missing from CAT+");
        }
    }
}

/// Deterministic regression: a zero-bid query can never be charged.
#[test]
fn zero_bids_never_pay() {
    let mut b = InstanceBuilder::new(Load::from_units(5.0));
    let x = b.operator(Load::from_units(3.0));
    let y = b.operator(Load::from_units(3.0));
    b.query(Money::ZERO, &[x]);
    b.query(Money::from_dollars(10.0), &[y]);
    let inst = b.build().unwrap();
    for mech in all_mechanisms() {
        let out = mech.run_seeded(&inst, 0);
        assert_eq!(out.payment(QueryId(0)), Money::ZERO, "{}", mech.name());
        out.validate(&inst).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// OPT_C dominance: no single constant price (evaluated with the same
    /// tie-resolution policy) yields more profit than the reported optimum.
    #[test]
    fn optc_dominates_every_candidate_price(inst in shared_instance()) {
        use cqac_core::mechanisms::optimal_constant_price;
        use cqac_core::model::AdmittedSet;

        let opt = optimal_constant_price(&inst);
        let mut candidates: Vec<Money> = inst.queries().iter().map(|q| q.bid).collect();
        candidates.sort_unstable();
        candidates.dedup();
        for price in candidates {
            if price.is_zero() {
                continue;
            }
            // Mandatory winners (bid strictly above) must fit, else invalid.
            let mut state = AdmittedSet::new(&inst);
            let mut winners = 0u64;
            let mut valid = true;
            let mut order: Vec<_> = inst.query_ids().collect();
            order.sort_by(|&a, &b| inst.bid(b).cmp(&inst.bid(a)).then_with(|| a.cmp(&b)));
            for &q in &order {
                if inst.bid(q) <= price {
                    break;
                }
                if state.fits(q) {
                    state.admit(q);
                    winners += 1;
                } else {
                    valid = false;
                    break;
                }
            }
            if !valid {
                continue;
            }
            // Tie group, cheapest marginal first (same policy as OPT_C).
            let mut tied: Vec<_> = order
                .iter()
                .copied()
                .filter(|&q| inst.bid(q) == price)
                .collect();
            loop {
                let pick = tied
                    .iter()
                    .enumerate()
                    .map(|(i, &q)| (i, state.marginal_load(q)))
                    .min_by(|(ia, la), (ib, lb)| la.cmp(lb).then_with(|| ia.cmp(ib)));
                match pick {
                    Some((i, load)) if load <= state.remaining() => {
                        let q = tied.swap_remove(i);
                        state.admit(q);
                        winners += 1;
                    }
                    _ => break,
                }
            }
            let profit = price.mul_count(winners);
            prop_assert!(
                profit <= opt.profit,
                "price {price} yields {profit} > OPT_C {}",
                opt.profit
            );
        }
    }

    /// Every winner of the strategyproof stop-fill mechanisms pays the same
    /// per-model-load unit price (the first loser's density) — Algorithm 1
    /// step 5's structure.
    #[test]
    fn caf_cat_charge_uniform_unit_prices(inst in shared_instance()) {
        use cqac_core::units::Density;
        type LoadFn = fn(&AuctionInstance, QueryId) -> Load;
        let variants: [(Box<dyn Mechanism>, LoadFn); 2] = [
            (Box::new(Caf), |i, q| i.fair_share_load(q)),
            (Box::new(Cat), |i, q| i.total_load(q)),
        ];
        for (mech, load_of) in variants {
            let out = mech.run_seeded(&inst, 0);
            let densities: Vec<Density> = out
                .winners
                .iter()
                .filter(|&&w| !out.payment(w).is_zero())
                .map(|&w| Density::new(out.payment(w), load_of(&inst, w)))
                .collect();
            for pair in densities.windows(2) {
                // Allow one micro-dollar of flooring slack per payment by
                // comparing cross products with tolerance via f64.
                let a = pair[0].as_f64();
                let b = pair[1].as_f64();
                prop_assert!(
                    (a - b).abs() <= 1e-3 * a.max(b).max(1.0),
                    "{}: non-uniform unit prices {a} vs {b}",
                    mech.name()
                );
            }
        }
    }
}
