//! Zipf-skewed **hot-key** stream scenarios.
//!
//! Hash-partitioned parallel execution degrades exactly when the key
//! distribution is skewed: the shard owning the hot keys backs up while
//! the others idle. This module generates deterministic event streams
//! whose key column follows a bounded [`Zipf`] distribution (`skew = 0`
//! recovers the uniform control), for benchmarks and soak tests of
//! load-rebalancing schedulers — the `hot_key_skew` bench group drives
//! the engine's morsel scheduler with them and asserts that work
//! stealing rebalances the hot shard's backlog.
//!
//! The rows are engine-agnostic `(ts, key, value)` triples: timestamps
//! ascend one per row (so event-time watermarks advance steadily), keys
//! are Zipf draws, and values are a small deterministic ramp (usable as
//! an exact integer-aggregation input).

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of a hot-key scenario.
#[derive(Clone, Debug)]
pub struct HotKeyParams {
    /// Number of distinct keys (the Zipf support: keys are `1..=keys`).
    pub keys: u64,
    /// Zipf skewness: `0.0` = uniform, `1.0` = classic hot-key skew
    /// (the paper's operator-load skew), larger = hotter.
    pub skew: f64,
    /// Number of rows to generate.
    pub rows: usize,
    /// RNG seed — equal seeds yield byte-identical scenarios.
    pub seed: u64,
}

impl HotKeyParams {
    /// The paper-flavored default: 64 keys at skew 1 — the hottest key
    /// draws ~20% of all rows, so one shard of a small cluster saturates.
    pub fn skewed(rows: usize) -> Self {
        Self {
            keys: 64,
            skew: 1.0,
            rows,
            seed: 0x00C0_FFEE,
        }
    }

    /// The uniform control with the same support, row count, and seed.
    pub fn uniform(rows: usize) -> Self {
        Self {
            skew: 0.0,
            ..Self::skewed(rows)
        }
    }
}

/// One generated event: ascending timestamp, Zipf-drawn key, ramp value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HotKeyRow {
    /// Event timestamp (`1..=rows`, one per row).
    pub ts: u64,
    /// The (possibly hot) key, in `1..=keys`.
    pub key: u64,
    /// A deterministic small integer payload (`ts mod 1000`).
    pub value: i64,
}

/// Generates the scenario's rows (deterministic in the parameters).
///
/// # Panics
/// Panics when `keys == 0` or `skew` is negative/non-finite (the
/// [`Zipf`] support contract).
pub fn hot_key_rows(params: &HotKeyParams) -> Vec<HotKeyRow> {
    let zipf = Zipf::new(params.keys, params.skew);
    let mut rng = StdRng::seed_from_u64(params.seed);
    (0..params.rows)
        .map(|i| {
            let ts = i as u64 + 1;
            HotKeyRow {
                ts,
                key: zipf.sample(&mut rng),
                value: (ts % 1000) as i64,
            }
        })
        .collect()
}

/// Per-key row counts of a generated scenario (index `k - 1` holds key
/// `k`'s count) — handy for asserting skew or balance in tests.
pub fn key_histogram(params: &HotKeyParams, rows: &[HotKeyRow]) -> Vec<u64> {
    let mut counts = vec![0u64; params.keys as usize];
    for row in rows {
        counts[(row.key - 1) as usize] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_deterministic() {
        let p = HotKeyParams::skewed(5_000);
        assert_eq!(hot_key_rows(&p), hot_key_rows(&p));
        let mut other = p.clone();
        other.seed += 1;
        assert_ne!(hot_key_rows(&p), hot_key_rows(&other));
    }

    #[test]
    fn timestamps_ascend_one_per_row() {
        let rows = hot_key_rows(&HotKeyParams::uniform(100));
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.ts, i as u64 + 1);
            assert_eq!(row.value, (row.ts % 1000) as i64);
        }
    }

    #[test]
    fn skewed_scenario_concentrates_on_the_hot_key() {
        let p = HotKeyParams::skewed(20_000);
        let hist = key_histogram(&p, &hot_key_rows(&p));
        let hot = hist[0] as f64 / p.rows as f64;
        // Zipf(64, 1): P(1) ≈ 0.21 — the hot key dwarfs the uniform
        // share of 1/64 ≈ 0.016.
        assert!(hot > 0.15, "hot-key share {hot:.3} too small");
        assert!(
            hist[0] > 5 * hist[hist.len() - 1],
            "tail key unexpectedly hot"
        );
    }

    #[test]
    fn uniform_control_is_balanced() {
        let p = HotKeyParams::uniform(64_000);
        let hist = key_histogram(&p, &hot_key_rows(&p));
        let expected = p.rows as f64 / p.keys as f64;
        for (k, &count) in hist.iter().enumerate() {
            let ratio = count as f64 / expected;
            assert!(
                (0.7..1.3).contains(&ratio),
                "key {} count {count} strays from uniform {expected}",
                k + 1
            );
        }
    }
}
