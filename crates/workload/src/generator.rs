//! The §VI-A workload generator (Table III parameters plus the
//! operator-splitting procedure that sweeps the degree-of-sharing axis).

use crate::zipf::Zipf;
use cqac_core::model::{AuctionInstance, InstanceBuilder, OperatorId};
use cqac_core::units::{Load, Money};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Generator parameters; [`WorkloadParams::paper`] reproduces Table III.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkloadParams {
    /// Number of queries per input instance (2000 in the paper).
    pub num_queries: usize,
    /// Target mean number of operators per query. The paper's operator
    /// counts (700 at max degree 60, 8800 at degree 1) pin this at ≈ 4.4:
    /// the base instance draws operators until the total number of
    /// (query, operator) incidences reaches `num_queries × mean_ops_per_query`.
    pub mean_ops_per_query: f64,
    /// Maximum degree of sharing in the *base* instance (60).
    pub base_max_degree: u32,
    /// Zipf skew of the per-operator sharing degree (1.0).
    pub degree_skew: f64,
    /// Maximum bid in dollars (100).
    pub max_bid: u64,
    /// Zipf skew of bids (0.5).
    pub bid_skew: f64,
    /// Maximum operator load in capacity units (10).
    pub max_op_load: u64,
    /// Zipf skew of operator loads (1.0).
    pub load_skew: f64,
}

impl WorkloadParams {
    /// The exact Table III configuration.
    pub fn paper() -> Self {
        Self {
            num_queries: 2000,
            mean_ops_per_query: 4.4,
            base_max_degree: 60,
            degree_skew: 1.0,
            max_bid: 100,
            bid_skew: 0.5,
            max_op_load: 10,
            load_skew: 1.0,
        }
    }

    /// A proportionally scaled-down configuration for fast tests and CI:
    /// same distributions, `n` queries.
    pub fn scaled(n: usize) -> Self {
        Self {
            num_queries: n,
            ..Self::paper()
        }
    }
}

/// A workload in mutable form: operators with loads and *explicit member
/// query lists*, plus per-query bids. This is the representation the
/// splitting procedure rewrites; [`RawWorkload::to_instance`] freezes it
/// into an [`AuctionInstance`] at a given capacity.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RawWorkload {
    /// Number of queries (bids.len()).
    pub num_queries: usize,
    /// Bid per query.
    pub bids: Vec<Money>,
    /// Operator loads.
    pub loads: Vec<Load>,
    /// Operator membership: `members[j]` lists the queries sharing operator
    /// `j`. Every query appears in at least one operator's list.
    pub members: Vec<Vec<u32>>,
}

impl RawWorkload {
    /// The maximum sharing degree over all operators.
    pub fn max_degree(&self) -> usize {
        self.members.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Total number of (query, operator) incidences.
    pub fn incidences(&self) -> usize {
        self.members.iter().map(Vec::len).sum()
    }

    /// Each query's total load (sum over the operators containing it).
    pub fn query_total_loads(&self) -> Vec<Load> {
        let mut totals = vec![Load::ZERO; self.num_queries];
        for (j, qs) in self.members.iter().enumerate() {
            for &q in qs {
                totals[q as usize] += self.loads[j];
            }
        }
        totals
    }

    /// Splits every operator of degree `> max_degree` by greedy halving
    /// (8 → 4, 2, 1, 1), partitioning its member queries among the parts —
    /// the paper's procedure for deriving the next point on the
    /// degree-of-sharing axis. Each part keeps the original operator's
    /// load, so **every query's total load is invariant** (tested).
    ///
    /// The partition of members is randomized by `rng`, as in the paper
    /// ("the queries associated with that operator will be distributed
    /// among the resulting operators").
    pub fn split_to_max_degree<R: Rng + ?Sized>(&mut self, max_degree: usize, rng: &mut R) {
        assert!(max_degree >= 1, "max degree must be at least 1");
        let mut new_loads = Vec::new();
        let mut new_members: Vec<Vec<u32>> = Vec::new();
        for j in 0..self.members.len() {
            let d = self.members[j].len();
            if d <= max_degree {
                continue;
            }
            // Greedy halving part sizes: d → d/2, d/4, ..., 1, 1 — but never
            // larger than max_degree (halving from d ≤ 2·max_degree already
            // guarantees that; clamp for direct jumps).
            let mut parts = Vec::new();
            let mut r = d;
            while r > 1 {
                let half = (r / 2).min(max_degree);
                parts.push(half);
                r -= half;
            }
            if r == 1 {
                parts.push(1);
            }
            debug_assert_eq!(parts.iter().sum::<usize>(), d);
            // Shuffle members, keep the first part in place, spin the rest
            // off into fresh operators with the same load.
            self.members[j].shuffle(rng);
            let mut rest = self.members[j].split_off(parts[0]);
            for &size in &parts[1..] {
                let tail = rest.split_off(size);
                new_loads.push(self.loads[j]);
                new_members.push(rest);
                rest = tail;
            }
            debug_assert!(rest.is_empty());
        }
        self.loads.extend(new_loads);
        self.members.extend(new_members);
    }

    /// Freezes the workload into a validated [`AuctionInstance`].
    pub fn to_instance(&self, capacity: Load) -> AuctionInstance {
        let mut b =
            InstanceBuilder::new(capacity).with_capacity_hint(self.loads.len(), self.num_queries);
        let mut per_query_ops: Vec<Vec<OperatorId>> = vec![Vec::new(); self.num_queries];
        for (j, load) in self.loads.iter().enumerate() {
            let id = b.operator(*load);
            for &q in &self.members[j] {
                per_query_ops[q as usize].push(id);
            }
        }
        for (q, ops) in per_query_ops.iter().enumerate() {
            b.query(self.bids[q], ops);
        }
        b.build().expect("generated workload is well-formed")
    }
}

/// Deterministic, seedable generator of paper workload sets.
///
/// One `WorkloadGenerator` stands for the paper's "50 different sets of
/// workload": set `i` is derived from `seed + i`, so every experiment is
/// exactly regenerable.
#[derive(Clone, Debug)]
pub struct WorkloadGenerator {
    params: WorkloadParams,
    seed: u64,
}

impl WorkloadGenerator {
    /// A generator over the given parameters rooted at `seed`.
    pub fn new(params: WorkloadParams, seed: u64) -> Self {
        Self { params, seed }
    }

    /// The generator's parameters.
    pub fn params(&self) -> &WorkloadParams {
        &self.params
    }

    /// Generates workload-set `set_index`'s base instance (max degree =
    /// `base_max_degree`).
    pub fn base_workload(&self, set_index: u64) -> RawWorkload {
        let p = &self.params;
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(set_index + 1)),
        );
        let degree_dist = Zipf::new(u64::from(p.base_max_degree), p.degree_skew);
        let bid_dist = Zipf::new(p.max_bid, p.bid_skew);
        let load_dist = Zipf::new(p.max_op_load, p.load_skew);

        let bids: Vec<Money> = (0..p.num_queries)
            .map(|_| Money::from_units(bid_dist.sample(&mut rng) as f64))
            .collect();

        let target_incidences = (p.num_queries as f64 * p.mean_ops_per_query).round() as usize;
        let mut loads: Vec<Load> = Vec::new();
        let mut members: Vec<Vec<u32>> = Vec::new();
        let mut incidences = 0usize;
        let mut covered = vec![false; p.num_queries];
        while incidences < target_incidences {
            let d = (degree_dist.sample(&mut rng) as usize).min(p.num_queries);
            let load = Load::from_units(load_dist.sample(&mut rng) as f64);
            // d distinct random queries share this operator.
            let mut qs = rand::seq::index::sample(&mut rng, p.num_queries, d)
                .into_iter()
                .map(|i| i as u32)
                .collect::<Vec<_>>();
            qs.sort_unstable();
            for &q in &qs {
                covered[q as usize] = true;
            }
            incidences += qs.len();
            loads.push(load);
            members.push(qs);
        }
        // Every query must contain at least one operator: give uncovered
        // queries a private operator (degree 1, Zipf load).
        for (q, was_covered) in covered.iter().enumerate() {
            if !was_covered {
                loads.push(Load::from_units(load_dist.sample(&mut rng) as f64));
                members.push(vec![q as u32]);
            }
        }
        RawWorkload {
            num_queries: p.num_queries,
            bids,
            loads,
            members,
        }
    }

    /// Yields `(max_degree_parameter, instance)` for every max degree from
    /// `base_max_degree` down to 1, derived sequentially by operator
    /// splitting exactly as in §VI-A (instance *m* is derived from instance
    /// *m+1*).
    pub fn sharing_sweep(&self, set_index: u64, capacity: Load) -> Vec<(u32, AuctionInstance)> {
        let mut raw = self.base_workload(set_index);
        let mut split_rng = StdRng::seed_from_u64(self.seed ^ 0xD1B5_4A32_D192_ED03u64 ^ set_index);
        let mut out = Vec::with_capacity(self.params.base_max_degree as usize);
        for degree in (1..=self.params.base_max_degree).rev() {
            raw.split_to_max_degree(degree as usize, &mut split_rng);
            out.push((degree, raw.to_instance(capacity)));
        }
        out.reverse(); // ascending degree, matching the figures' x-axis
        out
    }

    /// Like [`WorkloadGenerator::sharing_sweep`] but only for the selected
    /// degrees (saves time when plotting coarser sweeps).
    pub fn sharing_sweep_at(
        &self,
        set_index: u64,
        capacity: Load,
        degrees: &[u32],
    ) -> Vec<(u32, AuctionInstance)> {
        let mut want: Vec<u32> = degrees.to_vec();
        want.sort_unstable();
        want.dedup();
        let mut raw = self.base_workload(set_index);
        let mut split_rng = StdRng::seed_from_u64(self.seed ^ 0xD1B5_4A32_D192_ED03u64 ^ set_index);
        let mut out = Vec::with_capacity(want.len());
        for degree in (1..=self.params.base_max_degree).rev() {
            raw.split_to_max_degree(degree as usize, &mut split_rng);
            if want.binary_search(&degree).is_ok() {
                out.push((degree, raw.to_instance(capacity)));
            }
        }
        out.reverse();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> WorkloadParams {
        WorkloadParams {
            num_queries: 200,
            mean_ops_per_query: 4.4,
            base_max_degree: 16,
            degree_skew: 1.0,
            max_bid: 100,
            bid_skew: 0.5,
            max_op_load: 10,
            load_skew: 1.0,
        }
    }

    #[test]
    fn base_workload_respects_parameters() {
        let generator = WorkloadGenerator::new(small_params(), 42);
        let raw = generator.base_workload(0);
        assert_eq!(raw.num_queries, 200);
        assert!(raw.max_degree() <= 16);
        assert!(raw.incidences() >= (200.0 * 4.4) as usize);
        for bid in &raw.bids {
            assert!(bid.micro() >= 1_000_000 && bid.micro() <= 100_000_000);
        }
        for load in &raw.loads {
            assert!(load.micro() >= 1_000_000 && load.micro() <= 10_000_000);
        }
        // Every query covered.
        let mut covered = [false; 200];
        for qs in &raw.members {
            for &q in qs {
                covered[q as usize] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn generation_is_deterministic() {
        let generator = WorkloadGenerator::new(small_params(), 42);
        let a = generator.base_workload(3);
        let b = generator.base_workload(3);
        assert_eq!(a.bids, b.bids);
        assert_eq!(a.members, b.members);
        let c = generator.base_workload(4);
        assert_ne!(a.members, c.members);
    }

    #[test]
    fn splitting_preserves_every_query_total_load() {
        let generator = WorkloadGenerator::new(small_params(), 7);
        let mut raw = generator.base_workload(0);
        let before = raw.query_total_loads();
        let mut rng = StdRng::seed_from_u64(1);
        for degree in (1..=16).rev() {
            raw.split_to_max_degree(degree, &mut rng);
            assert!(raw.max_degree() <= degree, "degree bound violated");
            assert_eq!(
                raw.query_total_loads(),
                before,
                "query loads changed at degree {degree}"
            );
        }
        // At max degree 1 every incidence is its own operator.
        assert_eq!(raw.members.len(), raw.incidences());
    }

    #[test]
    fn greedy_halving_matches_paper_example() {
        // A degree-8 operator split to max degree 7 becomes parts 4,2,1,1.
        let raw = RawWorkload {
            num_queries: 8,
            bids: (0..8).map(|_| Money::from_units(1.0)).collect(),
            loads: vec![Load::from_units(2.0)],
            members: vec![(0..8).collect()],
        };
        let mut raw = raw;
        let mut rng = StdRng::seed_from_u64(0);
        raw.split_to_max_degree(7, &mut rng);
        let mut sizes: Vec<usize> = raw.members.iter().map(Vec::len).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(sizes, vec![4, 2, 1, 1]);
        assert!(raw.loads.iter().all(|&l| l == Load::from_units(2.0)));
    }

    #[test]
    fn sweep_has_expected_operator_growth() {
        let generator = WorkloadGenerator::new(small_params(), 11);
        let sweep = generator.sharing_sweep(0, Load::from_units(1000.0));
        assert_eq!(sweep.len(), 16);
        let ops_low = sweep[0].1.num_operators(); // degree 1
        let ops_high = sweep[15].1.num_operators(); // degree 16
        assert!(
            ops_low > ops_high,
            "splitting must increase operator count ({ops_low} vs {ops_high})"
        );
        for (degree, inst) in &sweep {
            assert!(inst.max_degree_of_sharing() <= *degree);
            assert_eq!(inst.num_queries(), 200);
        }
    }

    #[test]
    fn sweep_at_selected_degrees_matches_full_sweep() {
        let generator = WorkloadGenerator::new(small_params(), 5);
        let capacity = Load::from_units(500.0);
        let full = generator.sharing_sweep(0, capacity);
        let partial = generator.sharing_sweep_at(0, capacity, &[1, 8, 16]);
        assert_eq!(partial.len(), 3);
        for (degree, inst) in partial {
            let (fd, finst) = full.iter().find(|(d, _)| *d == degree).unwrap();
            assert_eq!(*fd, degree);
            assert_eq!(finst.num_operators(), inst.num_operators());
            assert_eq!(finst.num_queries(), inst.num_queries());
        }
    }

    #[test]
    fn paper_scale_smoke() {
        // Full 2000-query base instance: operator count near 700, incidences
        // near 8800 (Table III's extremes).
        let generator = WorkloadGenerator::new(WorkloadParams::paper(), 1);
        let raw = generator.base_workload(0);
        assert_eq!(raw.num_queries, 2000);
        assert!(
            (500..=1100).contains(&raw.members.len()),
            "base operator count {} outside the paper's ballpark",
            raw.members.len()
        );
        assert!((8500..=9500).contains(&raw.incidences()));
    }
}

impl RawWorkload {
    /// Serializes the workload to JSON (experiment artifacts are stored
    /// alongside the CSVs so every EXPERIMENTS.md row can be regenerated
    /// from the exact inputs).
    pub fn save_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        let json = serde_json::to_string(self).map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Loads a workload saved by [`RawWorkload::save_json`].
    pub fn load_json(path: &std::path::Path) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(std::io::Error::other)
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;

    #[test]
    fn save_load_round_trip() {
        let generator = WorkloadGenerator::new(
            WorkloadParams {
                num_queries: 50,
                base_max_degree: 8,
                ..WorkloadParams::scaled(50)
            },
            3,
        );
        let raw = generator.base_workload(0);
        let dir = std::env::temp_dir().join("cqac-workload-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("w.json");
        raw.save_json(&path).unwrap();
        let back = RawWorkload::load_json(&path).unwrap();
        assert_eq!(back.num_queries, raw.num_queries);
        assert_eq!(back.bids, raw.bids);
        assert_eq!(back.loads, raw.loads);
        assert_eq!(back.members, raw.members);
        std::fs::remove_file(&path).ok();
    }
}
