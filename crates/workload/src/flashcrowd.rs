//! **Flash-crowd** overload scenarios.
//!
//! A flash crowd is a sudden ingest spike — a news event makes thousands
//! of updates land in the same instant, multiplying the arrival rate the
//! admission auction priced far beyond the admitted load. The engine's
//! answer is deterministic load shedding (an
//! `OverloadPolicy` bounding the rows buffered per flush, shedding whole
//! batches from the lowest-bid streams first); this module generates the
//! *workload side* of that story: a steady baseline rate punctuated by
//! burst windows where every row of the window shares one timestamp.
//!
//! The rows are engine-agnostic `(ts, key, value)` triples like
//! [`crate::hotkey`]'s, so the same feeding shims work; bursts are marked
//! in the row itself (`burst == true`) so tests can count exactly how
//! many burst rows survived shedding.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameters of a flash-crowd scenario.
#[derive(Clone, Debug)]
pub struct FlashCrowdParams {
    /// Rows per time unit during calm stretches.
    pub baseline_rate: usize,
    /// Rows that land *in one instant* at each burst.
    pub burst_size: usize,
    /// Time units between consecutive bursts (a burst fires when
    /// `ts % burst_every == 0`, `ts > 0`).
    pub burst_every: u64,
    /// Total time units covered.
    pub duration: u64,
    /// Number of distinct keys (uniformly drawn, `1..=keys`).
    pub keys: u64,
    /// RNG seed — equal seeds yield byte-identical scenarios.
    pub seed: u64,
}

impl FlashCrowdParams {
    /// A compact default: 4 rows/tick baseline, 64-row bursts every 10
    /// ticks over 50 ticks — a 16× spike against the steady rate.
    pub fn spiky(seed: u64) -> Self {
        Self {
            baseline_rate: 4,
            burst_size: 64,
            burst_every: 10,
            duration: 50,
            keys: 8,
            seed,
        }
    }
}

/// One generated event; `burst` marks rows belonging to a spike.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlashCrowdRow {
    /// Event timestamp (time unit; every burst row of a spike shares one).
    pub ts: u64,
    /// Uniformly drawn key in `1..=keys`.
    pub key: u64,
    /// A deterministic small integer payload (`ts mod 1000`).
    pub value: i64,
    /// Whether this row belongs to a burst window.
    pub burst: bool,
}

/// Generates the scenario's rows in timestamp order (deterministic in the
/// parameters). Baseline rows advance one timestamp per tick; at every
/// `burst_every`-th tick, `burst_size` extra rows land on that same
/// timestamp *before* the tick's baseline rows.
///
/// # Panics
/// Panics when `keys == 0` or `burst_every == 0`.
pub fn flash_crowd_rows(params: &FlashCrowdParams) -> Vec<FlashCrowdRow> {
    assert!(params.keys > 0, "need at least one key");
    assert!(params.burst_every > 0, "burst period must be positive");
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut out = Vec::new();
    for ts in 1..=params.duration {
        let burst = ts % params.burst_every == 0;
        let spike = if burst { params.burst_size } else { 0 };
        for i in 0..spike + params.baseline_rate {
            out.push(FlashCrowdRow {
                ts,
                key: rng.random_range(1..=params.keys),
                value: (ts % 1000) as i64,
                burst: i < spike,
            });
        }
    }
    out
}

/// Splits a scenario's rows into per-tick batches (one `Vec` per time
/// unit, in order) — the natural feeding granularity for an engine whose
/// overload policy meters rows per flush.
pub fn tick_batches(rows: &[FlashCrowdRow]) -> Vec<Vec<FlashCrowdRow>> {
    let mut ticks: Vec<Vec<FlashCrowdRow>> = Vec::new();
    for row in rows {
        if ticks.last().is_none_or(|t| t[0].ts != row.ts) {
            ticks.push(Vec::new());
        }
        ticks.last_mut().expect("just pushed").push(*row);
    }
    ticks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_deterministic() {
        let p = FlashCrowdParams::spiky(7);
        assert_eq!(flash_crowd_rows(&p), flash_crowd_rows(&p));
        assert_ne!(
            flash_crowd_rows(&p),
            flash_crowd_rows(&FlashCrowdParams::spiky(8))
        );
    }

    #[test]
    fn bursts_land_in_one_instant_at_the_right_period() {
        let p = FlashCrowdParams::spiky(7);
        let rows = flash_crowd_rows(&p);
        for row in &rows {
            if row.burst {
                assert_eq!(
                    row.ts % p.burst_every,
                    0,
                    "burst row off-period at ts {}",
                    row.ts
                );
            }
        }
        let burst_rows = rows.iter().filter(|r| r.burst).count();
        let bursts = (p.duration / p.burst_every) as usize;
        assert_eq!(burst_rows, bursts * p.burst_size);
    }

    #[test]
    fn tick_batches_partition_in_order() {
        let p = FlashCrowdParams::spiky(7);
        let rows = flash_crowd_rows(&p);
        let ticks = tick_batches(&rows);
        assert_eq!(ticks.len(), p.duration as usize);
        assert_eq!(ticks.iter().map(Vec::len).sum::<usize>(), rows.len());
        for (i, tick) in ticks.iter().enumerate() {
            assert!(tick.iter().all(|r| r.ts == i as u64 + 1));
        }
        // Burst ticks dwarf calm ones.
        assert_eq!(ticks[9].len(), p.burst_size + p.baseline_rate);
        assert_eq!(ticks[0].len(), p.baseline_rate);
    }
}
