//! Strategic-lying workload transformation (§VI-B, Figure 5).
//!
//! CAR is the one mechanism that is *not* strategyproof, so under it users
//! who share many operators rationally underbid. The paper simulates this
//! by giving each client an alternative bid — her valuation times a *lying
//! factor* — submitted with some probability whenever her query's
//! static-fair-share/total-load ratio falls below a threshold (heavily
//! shared queries are the ones with an incentive to lie).

use cqac_core::model::AuctionInstance;
use cqac_core::units::Money;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// Parameters of the lying transformation.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LyingProfile {
    /// Lie only when `C^SF_i / C^T_i` is below this (heavy sharing).
    pub ratio_threshold: f64,
    /// Probability that an eligible user lies.
    pub lie_probability: f64,
    /// The alternative bid is `valuation × lying_factor`.
    pub lying_factor: f64,
}

impl LyingProfile {
    /// The paper's Moderate Lying workload: threshold 0.25, probability 0.5,
    /// factor 0.5.
    pub fn moderate() -> Self {
        Self {
            ratio_threshold: 0.25,
            lie_probability: 0.5,
            lying_factor: 0.5,
        }
    }

    /// The paper's Aggressive Lying workload: threshold 0.35, probability
    /// 0.7, factor 0.3.
    pub fn aggressive() -> Self {
        Self {
            ratio_threshold: 0.35,
            lie_probability: 0.7,
            lying_factor: 0.3,
        }
    }
}

/// Applies the lying transformation: returns the instance with the
/// *submitted* (possibly lowered) bids, plus the vector of true valuations
/// (the original bids) for payoff accounting.
pub fn apply_lying<R: Rng + ?Sized>(
    inst: &AuctionInstance,
    profile: LyingProfile,
    rng: &mut R,
) -> (AuctionInstance, Vec<Money>) {
    let valuations: Vec<Money> = inst.queries().iter().map(|q| q.bid).collect();
    let mut lied = inst.clone();
    for q in inst.query_ids() {
        let total = inst.total_load(q);
        if total.is_zero() {
            continue;
        }
        let ratio = inst.fair_share_load(q).as_f64() / total.as_f64();
        if ratio < profile.ratio_threshold && rng.random_bool(profile.lie_probability) {
            let alternative =
                Money::from_micro((inst.bid(q).micro() as f64 * profile.lying_factor) as u64);
            lied = lied.with_bid(q, alternative);
        }
    }
    (lied, valuations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqac_core::model::InstanceBuilder;
    use cqac_core::units::Load;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Ten queries share one heavy operator (ratio = 0.1 < any threshold),
    /// one query owns a private operator (ratio 1.0).
    fn shared_instance() -> AuctionInstance {
        let mut b = InstanceBuilder::new(Load::from_units(100.0));
        let shared = b.operator(Load::from_units(10.0));
        for _ in 0..10 {
            b.query(Money::from_dollars(50.0), &[shared]);
        }
        let private = b.operator(Load::from_units(10.0));
        b.query(Money::from_dollars(50.0), &[private]);
        b.build().unwrap()
    }

    #[test]
    fn only_heavily_shared_queries_lie() {
        let inst = shared_instance();
        let mut rng = StdRng::seed_from_u64(3);
        let (lied, valuations) = apply_lying(
            &inst,
            LyingProfile {
                ratio_threshold: 0.25,
                lie_probability: 1.0,
                lying_factor: 0.5,
            },
            &mut rng,
        );
        for q in inst.query_ids().take(10) {
            assert_eq!(lied.bid(q), Money::from_dollars(25.0), "{q} must lie");
        }
        let private = cqac_core::model::QueryId(10);
        assert_eq!(lied.bid(private), Money::from_dollars(50.0));
        assert!(valuations.iter().all(|&v| v == Money::from_dollars(50.0)));
    }

    #[test]
    fn probability_zero_means_nobody_lies() {
        let inst = shared_instance();
        let mut rng = StdRng::seed_from_u64(3);
        let (lied, _) = apply_lying(
            &inst,
            LyingProfile {
                ratio_threshold: 1.0,
                lie_probability: 0.0,
                lying_factor: 0.5,
            },
            &mut rng,
        );
        for q in inst.query_ids() {
            assert_eq!(lied.bid(q), inst.bid(q));
        }
    }

    #[test]
    fn moderate_and_aggressive_match_paper_parameters() {
        let m = LyingProfile::moderate();
        assert_eq!(
            (m.ratio_threshold, m.lie_probability, m.lying_factor),
            (0.25, 0.5, 0.5)
        );
        let a = LyingProfile::aggressive();
        assert_eq!(
            (a.ratio_threshold, a.lie_probability, a.lying_factor),
            (0.35, 0.7, 0.3)
        );
    }

    #[test]
    fn lying_lowers_profit_under_car() {
        use cqac_core::mechanisms::{Car, Mechanism};
        // Capacity 12. Operator S (load 8) is shared by x1,x2,x3 (bids
        // 100/90/80; fair-share/total ratio 1/3 < 0.35, so all are liars at
        // probability 1). y has a private load-4 operator (bid 50); z a
        // private load-6 operator (bid 30) and always loses.
        //
        // Truthful CAR: x1 admitted first and pays for all of S; profit $60.
        // With all three x-queries underbidding to 30%, z leapfrogs them,
        // the x-queries are crowded out, and profit falls to $37.50.
        let mut b = InstanceBuilder::new(Load::from_units(12.0));
        let s = b.operator(Load::from_units(8.0));
        b.query(Money::from_dollars(100.0), &[s]);
        b.query(Money::from_dollars(90.0), &[s]);
        b.query(Money::from_dollars(80.0), &[s]);
        let p = b.operator(Load::from_units(4.0));
        b.query(Money::from_dollars(50.0), &[p]);
        let r = b.operator(Load::from_units(6.0));
        b.query(Money::from_dollars(30.0), &[r]);
        let inst = b.build().unwrap();

        let truthful_profit = Car::default().run_seeded(&inst, 0).profit();
        assert_eq!(truthful_profit, Money::from_dollars(60.0));

        let mut rng = StdRng::seed_from_u64(9);
        let certain_liars = LyingProfile {
            ratio_threshold: 0.35,
            lie_probability: 1.0,
            lying_factor: 0.3,
        };
        let (lied, _) = apply_lying(&inst, certain_liars, &mut rng);
        let lied_profit = Car::default().run_seeded(&lied, 0).profit();
        assert_eq!(lied_profit, Money::from_dollars(37.5));
        assert!(lied_profit < truthful_profit);
    }
}
