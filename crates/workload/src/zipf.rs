//! A bounded Zipf sampler.
//!
//! The paper draws degrees, bids, and loads from Zipf distributions with a
//! maximum value and a skewness parameter `s`: `P(k) ∝ 1/k^s` for
//! `k ∈ {1..=max}`. Small values dominate; `s` controls how heavily.
//!
//! The sampler precomputes the CDF once and draws with a binary search —
//! `O(max)` setup, `O(log max)` per sample — which is the right trade-off
//! for the evaluation's small supports (max ≤ 100) and millions of draws.

use rand::{Rng, RngExt};

/// Bounded Zipf distribution over `{1..=max}` with `P(k) ∝ 1/k^s`.
#[derive(Clone, Debug)]
pub struct Zipf {
    max: u64,
    skew: f64,
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution with the given support maximum and
    /// skewness.
    ///
    /// # Panics
    /// Panics when `max == 0` or `skew` is negative/non-finite.
    pub fn new(max: u64, skew: f64) -> Self {
        assert!(max >= 1, "Zipf support must be non-empty");
        assert!(
            skew.is_finite() && skew >= 0.0,
            "Zipf skew must be a non-negative finite number"
        );
        let mut cdf = Vec::with_capacity(max as usize);
        let mut acc = 0.0;
        for k in 1..=max {
            acc += 1.0 / (k as f64).powf(skew);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point drift at the top end.
        *cdf.last_mut().expect("non-empty cdf") = 1.0;
        Self { max, skew, cdf }
    }

    /// The support maximum.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The skewness parameter.
    pub fn skew(&self) -> f64 {
        self.skew
    }

    /// Draws one value in `{1..=max}`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.random_range(0.0..1.0);
        // First index whose cumulative probability exceeds u.
        let idx = self.cdf.partition_point(|&c| c <= u);
        (idx as u64 + 1).min(self.max)
    }

    /// The exact probability of value `k`.
    pub fn pmf(&self, k: u64) -> f64 {
        assert!((1..=self.max).contains(&k));
        let prev = if k == 1 {
            0.0
        } else {
            self.cdf[k as usize - 2]
        };
        self.cdf[k as usize - 1] - prev
    }

    /// The exact mean of the distribution.
    pub fn mean(&self) -> f64 {
        (1..=self.max).map(|k| k as f64 * self.pmf(k)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        for (max, skew) in [(10, 1.0), (100, 0.5), (60, 1.0), (1, 2.0)] {
            let z = Zipf::new(max, skew);
            let sum: f64 = (1..=max).map(|k| z.pmf(k)).sum();
            assert!((sum - 1.0).abs() < 1e-12, "pmf sum {sum} for max={max}");
        }
    }

    #[test]
    fn skew_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for k in 1..=4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn ones_dominate_at_high_skew() {
        let z = Zipf::new(10, 2.0);
        assert!(z.pmf(1) > 0.6);
        assert!(z.pmf(10) < 0.01);
    }

    #[test]
    fn samples_match_pmf() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let mut counts = [0u64; 10];
        for _ in 0..n {
            let k = z.sample(&mut rng);
            assert!((1..=10).contains(&k));
            counts[k as usize - 1] += 1;
        }
        for k in 1..=10u64 {
            let expected = z.pmf(k);
            let observed = counts[k as usize - 1] as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "value {k}: observed {observed:.4}, expected {expected:.4}"
            );
        }
    }

    #[test]
    fn empirical_mean_close_to_exact() {
        let z = Zipf::new(60, 1.0);
        let mut rng = StdRng::seed_from_u64(13);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| z.sample(&mut rng)).sum();
        let observed = sum as f64 / n as f64;
        assert!(
            (observed - z.mean()).abs() < 0.2,
            "mean {observed} vs exact {}",
            z.mean()
        );
        // The paper's degree distribution: mean ≈ 12.8 sharing queries.
        assert!((z.mean() - 12.8).abs() < 0.5);
    }

    #[test]
    fn degenerate_support() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 1);
        }
    }
}
