//! # cqac-workload — the ICDE 2010 evaluation workload generator
//!
//! Reproduces the synthetic workloads of the paper's §VI-A (Table III):
//!
//! | Parameter | Value |
//! |-----------|-------|
//! | workload sets | 50 |
//! | queries | 2000 |
//! | operators | 700 – 8800 |
//! | max degree of sharing | 1 – 60, Zipf skew 1 |
//! | maximum bid | 100, Zipf skew 0.5 |
//! | maximum operator load | 10, Zipf skew 1 |
//! | system capacity | 5k / 10k / 15k / 20k |
//!
//! The paper keeps the *average query load constant* across the
//! degree-of-sharing axis by generating one base workload at maximum degree
//! 60 and then repeatedly **splitting** high-degree operators (e.g. a
//! degree-8 operator splits into degrees 4, 2, 1, 1 — greedy halving) while
//! distributing the sharing queries among the parts. [`RawWorkload::split_to_max_degree`]
//! implements exactly that; [`WorkloadGenerator::sharing_sweep`] yields the
//! derived instance for every max degree from 60 down to 1.
//!
//! Strategic-lying workloads (§VI-B, Figure 5) are in [`lying`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod flashcrowd;
pub mod generator;
pub mod hotkey;
pub mod lying;
pub mod zipf;

pub use flashcrowd::{flash_crowd_rows, tick_batches, FlashCrowdParams, FlashCrowdRow};
pub use generator::{RawWorkload, WorkloadGenerator, WorkloadParams};
pub use hotkey::{hot_key_rows, HotKeyParams, HotKeyRow};
pub use lying::{apply_lying, LyingProfile};
pub use zipf::Zipf;
