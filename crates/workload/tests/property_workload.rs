//! Property-based tests of the Table III workload generator: the splitting
//! procedure's invariants and distributional sanity.

use cqac_core::units::{Load, Money};
use cqac_workload::generator::RawWorkload;
use cqac_workload::{WorkloadGenerator, WorkloadParams, Zipf};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: an arbitrary raw workload where operator membership covers
/// every query.
fn raw_workload() -> impl Strategy<Value = RawWorkload> {
    (2usize..30, 1usize..20)
        .prop_flat_map(|(n_queries, n_extra_ops)| {
            let ops = proptest::collection::vec(
                (
                    1u32..=10, // load units
                    proptest::collection::vec(0..n_queries, 1..=n_queries.min(12)),
                ),
                n_extra_ops,
            );
            let bids = proptest::collection::vec(1u32..=100, n_queries);
            (Just(n_queries), ops, bids)
        })
        .prop_map(|(n_queries, ops, bids)| {
            let mut loads = Vec::new();
            let mut members: Vec<Vec<u32>> = Vec::new();
            for (load, qs) in ops {
                let mut qs: Vec<u32> = qs.into_iter().map(|q| q as u32).collect();
                qs.sort_unstable();
                qs.dedup();
                loads.push(Load::from_units(f64::from(load)));
                members.push(qs);
            }
            // Guarantee coverage: one private operator per query.
            for q in 0..n_queries {
                loads.push(Load::from_units(1.0));
                members.push(vec![q as u32]);
            }
            RawWorkload {
                num_queries: n_queries,
                bids: bids
                    .into_iter()
                    .map(|b| Money::from_dollars(f64::from(b)))
                    .collect(),
                loads,
                members,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Splitting to any max degree preserves every query's total load,
    /// the total incidence count, and the degree bound.
    #[test]
    fn splitting_invariants(mut raw in raw_workload(), max_degree in 1usize..15, seed in 0u64..100) {
        let before_loads = raw.query_total_loads();
        let before_incidences = raw.incidences();
        let mut rng = StdRng::seed_from_u64(seed);
        raw.split_to_max_degree(max_degree, &mut rng);
        prop_assert!(raw.max_degree() <= max_degree);
        prop_assert_eq!(raw.query_total_loads(), before_loads);
        prop_assert_eq!(raw.incidences(), before_incidences);
    }

    /// Sequential splitting (the sweep) keeps the invariants at every step.
    #[test]
    fn sequential_sweep_invariants(mut raw in raw_workload(), seed in 0u64..100) {
        let before_loads = raw.query_total_loads();
        let mut rng = StdRng::seed_from_u64(seed);
        let start = raw.max_degree();
        for degree in (1..=start).rev() {
            raw.split_to_max_degree(degree, &mut rng);
            prop_assert!(raw.max_degree() <= degree);
            prop_assert_eq!(raw.query_total_loads(), before_loads.clone());
        }
        // Fully split: every incidence is a private operator.
        prop_assert_eq!(raw.members.len(), raw.incidences());
    }

    /// The frozen instance agrees with the raw workload on loads and
    /// sharing.
    #[test]
    fn instance_agrees_with_raw(raw in raw_workload()) {
        let inst = raw.to_instance(Load::from_units(10_000.0));
        prop_assert_eq!(inst.num_queries(), raw.num_queries);
        prop_assert_eq!(inst.num_operators(), raw.loads.len());
        let raw_totals = raw.query_total_loads();
        for q in inst.query_ids() {
            prop_assert_eq!(inst.total_load(q), raw_totals[q.index()]);
        }
        prop_assert_eq!(
            inst.max_degree_of_sharing() as usize,
            raw.max_degree()
        );
    }

    /// Zipf samples stay within the declared support.
    #[test]
    fn zipf_support(max in 1u64..200, skew in 0.0f64..3.0, seed in 0u64..1000) {
        let z = Zipf::new(max, skew);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            let v = z.sample(&mut rng);
            prop_assert!((1..=max).contains(&v));
        }
    }
}

/// Full paper-scale determinism: two generators with the same seed produce
/// identical sweeps (spot-checked at three degrees).
#[test]
fn sweeps_are_reproducible() {
    let params = WorkloadParams {
        num_queries: 300,
        base_max_degree: 16,
        ..WorkloadParams::scaled(300)
    };
    let g1 = WorkloadGenerator::new(params.clone(), 99);
    let g2 = WorkloadGenerator::new(params, 99);
    let s1 = g1.sharing_sweep_at(4, Load::from_units(1_000.0), &[1, 8, 16]);
    let s2 = g2.sharing_sweep_at(4, Load::from_units(1_000.0), &[1, 8, 16]);
    for ((d1, i1), (d2, i2)) in s1.iter().zip(&s2) {
        assert_eq!(d1, d2);
        assert_eq!(i1.num_operators(), i2.num_operators());
        for q in i1.query_ids() {
            assert_eq!(i1.total_load(q), i2.total_load(q));
            assert_eq!(i1.bid(q), i2.bid(q));
            assert_eq!(i1.query(q).operators, i2.query(q).operators);
        }
    }
}
