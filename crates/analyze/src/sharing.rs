//! Pass 4: sharing lints over the instantiated network.
//!
//! * **NL040 — interior-prefix duplication** (warning). The fusion pass
//!   collapses stateless chains without registering the chain's
//!   *interior* signatures, so a query equal to an interior prefix that
//!   arrives **after** the chain gets its own node: duplicate
//!   computation, identical results (the deliberate asymmetry pinned
//!   since the fusion PR; splitting live fused nodes is ROADMAP work).
//!   The lint flags a node `N` when some other node's signature extends
//!   `N`'s (it computes `N` as an interior stage) yet is *not reachable*
//!   from `N` — reachable extensions are exactly the shared-prefix case,
//!   where the longer chain subscribes to `N`'s output.
//! * **NL041 — dead node** (warning): a live node no registered query
//!   attributes. Refcount accounting would normally garbage-collect it;
//!   one that survives burns capacity the auction cannot charge anyone
//!   for.
//! * **NL042 — unreachable sink** (error): a registered query whose
//!   producer (top node or source stream) is not wired to the query's
//!   sink — the query would silently never emit.

use cqac_dsms::diag::{Code, Diagnostic, Report, Span};
use cqac_dsms::network::{NodeId, Producer, QueryNetwork, Target};
use std::collections::{HashSet, VecDeque};

/// Runs the sharing lints (see module docs).
pub fn lint(network: &QueryNetwork) -> Report {
    let mut report = Report::new();
    interior_prefix_duplicates(network, &mut report);
    dead_nodes(network, &mut report);
    unreachable_sinks(network, &mut report);
    report
}

/// Node ids reachable downstream from `start` (excluding `start`).
fn reachable_from(network: &QueryNetwork, start: NodeId) -> HashSet<NodeId> {
    let mut seen = HashSet::new();
    let mut frontier = VecDeque::from([start]);
    while let Some(id) = frontier.pop_front() {
        let Some(node) = network.node(id) else {
            continue;
        };
        for t in &node.downstream {
            if let Target::Node(d, _) = t {
                if seen.insert(*d) {
                    frontier.push_back(*d);
                }
            }
        }
    }
    seen
}

fn interior_prefix_duplicates(network: &QueryNetwork, report: &mut Report) {
    let ids = network.node_ids();
    for &n in &ids {
        let Some(prefix) = network.node(n) else {
            continue;
        };
        // Signatures are written top-first, so "F computes N as an
        // interior stage" reads as F's signature *ending* with
        // "<-" + N's signature.
        let marker = format!("<-{}", prefix.signature);
        let mut extensions: Vec<NodeId> = ids
            .iter()
            .copied()
            .filter(|&f| f != n)
            .filter(|&f| {
                network
                    .node(f)
                    .is_some_and(|node| node.signature.ends_with(&marker))
            })
            .collect();
        if extensions.is_empty() {
            continue;
        }
        let reachable = reachable_from(network, n);
        extensions.retain(|f| !reachable.contains(f));
        for f in extensions {
            report.push(Diagnostic::new(
                Code::InteriorPrefixDuplicate,
                Span::Node(n.0),
                format!(
                    "n{} ({}) recomputes work that n{} already performs as an \
                     interior stage of its fused chain — identical results, \
                     duplicate cost (submit the prefix before the chain, or \
                     wait for fused-node splitting)",
                    n.0, prefix.kind, f.0
                ),
            ));
        }
    }
}

fn dead_nodes(network: &QueryNetwork, report: &mut Report) {
    let mut referenced: HashSet<NodeId> = HashSet::new();
    for cq in network.query_ids() {
        if let Some(info) = network.query(cq) {
            referenced.extend(info.nodes.iter().copied());
        }
    }
    for id in network.node_ids() {
        if !referenced.contains(&id) {
            let kind = network.node(id).map_or("?", |n| n.kind);
            report.push(Diagnostic::new(
                Code::DeadNode,
                Span::Node(id.0),
                format!(
                    "n{} ({kind}) is live but no registered query attributes it",
                    id.0
                ),
            ));
        }
    }
}

fn unreachable_sinks(network: &QueryNetwork, report: &mut Report) {
    for cq in network.query_ids() {
        let Some(info) = network.query(cq) else {
            continue;
        };
        let wired = match &info.top {
            Producer::Node(id) => network
                .node(*id)
                .is_some_and(|n| n.downstream.contains(&Target::Sink(cq))),
            Producer::Stream(s) => network.stream_subscribers(s).contains(&Target::Sink(cq)),
        };
        if !wired {
            report.push(Diagnostic::new(
                Code::UnreachableSink,
                Span::Query(cq.0),
                format!(
                    "cq{}'s sink is not wired to its producer ({:?}) — the \
                     query can never emit",
                    cq.0, info.top
                ),
            ));
        }
    }
}
