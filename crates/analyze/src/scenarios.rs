//! Shipped scenario networks for `netlint`.
//!
//! Each scenario builds a representative engine — mirroring the shapes
//! the examples and the simulator exercise — feeds it a deterministic
//! calibration sample, and hands it to the analyzer. CI runs `netlint
//! --deny-warnings` over all of them, so every scenario must verify
//! clean: errors *and* warnings fail the gate.

use cqac_dsms::engine::DsmsEngine;
use cqac_dsms::expr::Expr;
use cqac_dsms::plan::{AggFunc, LogicalPlan};
use cqac_dsms::streams::{news_schema, quote_schema, NewsStream, StockStream};
use cqac_dsms::types::Value;

/// A named, self-contained network for `netlint` to verify.
pub struct Scenario {
    /// Stable scenario name (CLI selector).
    pub name: &'static str,
    /// One-line description printed by `netlint --list`.
    pub description: &'static str,
    build: fn() -> DsmsEngine,
}

impl Scenario {
    /// Builds the scenario's calibrated engine.
    pub fn build(&self) -> DsmsEngine {
        (self.build)()
    }
}

const SYMBOLS: [&str; 4] = ["IBM", "AAPL", "MSFT", "ORCL"];

fn base_engine() -> DsmsEngine {
    let mut e = DsmsEngine::new().with_max_batch_size(64);
    e.register_stream("quotes", quote_schema());
    e.register_stream("news", news_schema());
    e
}

fn calibrate(e: &mut DsmsEngine, quotes: usize, news: usize) {
    let mut q = StockStream::new(&SYMBOLS, 1, 42);
    let mut n = NewsStream::new(&SYMBOLS, 5, 43);
    e.push_rows("quotes", q.next_batch(quotes));
    if news > 0 {
        e.push_rows("news", n.next_batch(news));
    }
}

fn high_price(threshold: f64) -> LogicalPlan {
    LogicalPlan::source("quotes").filter(Expr::col(1).gt(Expr::lit(Value::Float(threshold))))
}

/// The stock-monitoring example's mix: shared filters, a quotes×news
/// join, and a per-symbol sliding average.
fn stock_monitoring() -> DsmsEngine {
    let mut e = base_engine();
    e.add_query(high_price(100.0)).expect("valid plan");
    e.add_query(high_price(100.0)).expect("valid plan"); // second user, shared node
    e.add_query(high_price(50.0).join(LogicalPlan::source("news"), 0, 0, 5_000))
        .expect("valid plan");
    e.add_query(LogicalPlan::source("quotes").sliding_aggregate(
        Some(0),
        AggFunc::Avg,
        1,
        60_000,
        10_000,
    ))
    .expect("valid plan");
    calibrate(&mut e, 2_000, 400);
    e
}

/// Deep stateless chains under fusion, with the shared prefix submitted
/// *before* the chain — the sharing-compatible order.
fn fused_chains() -> DsmsEngine {
    let mut e = base_engine();
    let prefix = high_price(100.0);
    e.add_query(prefix.clone()).expect("valid plan");
    e.add_query(
        prefix
            .filter(Expr::col(0).eq(Expr::lit(Value::str("IBM"))))
            .project(vec![
                ("symbol".to_string(), Expr::col(0)),
                ("price".to_string(), Expr::col(1)),
            ]),
    )
    .expect("valid plan");
    e.add_query(
        LogicalPlan::source("news")
            .filter(Expr::col(2).ge(Expr::lit(Value::Int(5))))
            .project(vec![("symbol".to_string(), Expr::col(0))]),
    )
    .expect("valid plan");
    calibrate(&mut e, 1_500, 300);
    e
}

/// Keyed stateful sharding: symbol-partitioned streams, a join keyed on
/// the partition key, a grouped aggregate, and an ungrouped exact Count
/// running as a partial member.
fn keyed_sharded() -> DsmsEngine {
    let mut e = base_engine().with_shards(4);
    e.set_shard_key("quotes", 0).expect("valid shard key");
    e.set_shard_key("news", 0).expect("valid shard key");
    e.add_query(high_price(20.0).join(LogicalPlan::source("news"), 0, 0, 2_000))
        .expect("valid plan");
    e.add_query(LogicalPlan::source("quotes").aggregate(Some(0), AggFunc::Count, 0, 1_000))
        .expect("valid plan");
    e.add_query(LogicalPlan::source("quotes").aggregate(None, AggFunc::Count, 0, 1_000))
        .expect("valid plan");
    // A float Avg stays behind the merge barrier — the audit must agree.
    e.add_query(LogicalPlan::source("quotes").aggregate(None, AggFunc::Avg, 1, 1_000))
        .expect("valid plan");
    calibrate(&mut e, 3_000, 500);
    e
}

/// Union fan-in and a post-union aggregate: multi-input barriers.
fn union_fanin() -> DsmsEngine {
    let mut e = base_engine();
    let spikes = high_price(150.0).project(vec![("symbol".to_string(), Expr::col(0))]);
    let mentions = LogicalPlan::source("news")
        .filter(Expr::col(2).ge(Expr::lit(Value::Int(8))))
        .project(vec![("symbol".to_string(), Expr::col(0))]);
    e.add_query(
        spikes
            .clone()
            .union(mentions)
            .aggregate(Some(0), AggFunc::Count, 0, 10_000),
    )
    .expect("valid plan");
    e.add_query(spikes).expect("valid plan");
    calibrate(&mut e, 2_000, 400);
    e
}

/// All shipped scenarios, in a stable order.
pub fn all() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "stock_monitoring",
            description: "shared filters, quotes x news join, per-symbol sliding average",
            build: stock_monitoring,
        },
        Scenario {
            name: "fused_chains",
            description: "deep stateless chains under fusion with a shared prefix",
            build: fused_chains,
        },
        Scenario {
            name: "keyed_sharded",
            description: "symbol-partitioned keyed join, grouped and partial aggregates, 4 shards",
            build: keyed_sharded,
        },
        Scenario {
            name: "union_fanin",
            description: "union fan-in with a post-union grouped count",
            build: union_fanin,
        },
    ]
}
