//! # cqac-analyze — static verification of plans and query networks
//!
//! The admission controller of the ICDE 2010 model decides which
//! continuous queries enter a *shared* operator network, so one
//! invariant-violating plan does not fail one query — it corrupts cost
//! attribution and determinism for every co-admitted CQ. This crate is
//! the static-analysis layer that proves the network's invariants hold
//! *before* the auction runs, and the `netlint` binary that gates CI on
//! them.
//!
//! ## Static verification
//!
//! Four passes, one shared diagnostic vocabulary
//! ([`cqac_dsms::diag`], re-exported here):
//!
//! 1. **Plan inference** ([`analyze_plan`] /
//!    [`cqac_dsms::diag::check_plan`]) — full type/schema inference over a
//!    [`LogicalPlan`] with error *accumulation*: every problem is
//!    reported, not just the first, while
//!    [`Report::first_error`] still maps onto the exact
//!    `PlanError` the first-error API produces.
//! 2. **Determinism audit** ([`determinism::audit`]) — independently
//!    re-derives the keyed-plan classification from the *logical* plans
//!    (partition-key flow through filters/projects/fused chains,
//!    join/group key compatibility, commutativity of stateful members,
//!    partial-aggregate eligibility) and cross-checks the network's
//!    physical [`cqac_dsms::network::KeyedPlan`], so the morsel
//!    scheduler's preconditions are *verified*, not assumed: every
//!    stateful node is either behind the deterministic merge barrier or
//!    proven order-free.
//! 3. **Cost-attribution conservation** ([`conservation::check`]) — the
//!    auction's pricing identity, checked in exact integer micro-units:
//!    per-CQ analytic costs across shared nodes sum to the per-node
//!    totals, and node refcounts equal the number of attributing queries.
//! 4. **Sharing lints** ([`sharing::lint`]) — the pinned PR-2
//!    interior-prefix duplication gap surfaces as a warning, plus
//!    dead-node and unreachable-sink detection.
//!
//! ## Diagnostic codes
//!
//! | Code  | Severity | Meaning |
//! |-------|----------|---------|
//! | NL001 | error    | unknown stream |
//! | NL002 | error    | expression type error |
//! | NL003 | error    | filter predicate is not boolean |
//! | NL004 | error    | join key column out of range |
//! | NL005 | error    | unhashable (float) join key — guards `ops.rs`'s join-side `debug_assert` |
//! | NL006 | error    | join key types differ |
//! | NL007 | error    | union inputs have different schemas |
//! | NL008 | error    | zero window (or slide) width |
//! | NL009 | error    | window slide exceeds window width |
//! | NL010 | error    | group-by column out of range |
//! | NL011 | error    | unhashable (float) group key — guards the aggregate `debug_assert`s |
//! | NL012 | error    | aggregated column out of range |
//! | NL013 | error    | aggregated column is not numeric |
//! | NL014 | error    | invalid shard key — guards `ops::shard_of_cell`'s `debug_assert` |
//! | NL020 | error    | keyed-plan classification divergence (logical vs physical) |
//! | NL021 | error    | stateful node neither behind a merge barrier nor proven order-free |
//! | NL030 | error    | per-CQ cost attribution does not sum to per-node totals |
//! | NL031 | error    | node refcounts drift from query attribution lists |
//! | NL040 | warning  | node duplicates the interior of a fused chain (shared-prefix gap) |
//! | NL041 | warning  | live node referenced by no registered query |
//! | NL042 | error    | query sink not wired to its producer |
//! | NL060 | error    | operator kernel panicked at runtime (the quarantine root cause) |
//! | NL061 | error    | query quarantined — it owned a panicked operator |
//! | NL062 | error    | pool worker died mid-flush; morsels replayed inline, seat respawned |
//! | NL063 | warning  | overload shedding dropped ingest rows from a stream |
//!
//! `netlint` (this crate's binary) runs every pass over the shipped
//! scenario networks ([`scenarios`]) and exits nonzero on errors — or on
//! warnings under `--deny-warnings`, which is how CI runs it. `--json`
//! emits the machine-readable diagnostic array ([`Report::to_json`]).
//!
//! Admission uses the same passes: `QueryNetwork::add_query` rejects any
//! plan whose report has errors, and `DsmsCenter::run_auction` attaches
//! the full report to the [`cqac_dsms::center::Decision`] of every bidder
//! rejected before the auction.
//!
//! The NL06x range is **runtime** diagnostics: no static pass emits them.
//! They are produced by the engine's quarantine and overload machinery
//! (`DsmsEngine::runtime_report` / `DsmsEngine::overload_report`) in the
//! same [`Report`] format, so one toolchain consumes both static and
//! runtime findings.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod conservation;
pub mod determinism;
pub mod scenarios;
pub mod sharing;

pub use cqac_dsms::diag::{check_plan, check_shard_key, Code, Diagnostic, Report, Severity, Span};

use cqac_dsms::cost::CostModel;
use cqac_dsms::engine::DsmsEngine;
use cqac_dsms::network::QueryNetwork;
use cqac_dsms::plan::{LogicalPlan, StreamCatalog};
use std::collections::HashMap;

/// Verifies one logical plan against a stream catalog (pass 1). This is
/// [`cqac_dsms::diag::check_plan`] under the analyzer's name.
pub fn analyze_plan(plan: &LogicalPlan, catalog: &dyn StreamCatalog) -> Report {
    check_plan(plan, catalog)
}

/// Verifies an instantiated network: re-checks every registered plan
/// (pass 1), audits determinism against the given shard keys (pass 2),
/// and runs the sharing lints (pass 4). Cost conservation (pass 3) needs
/// an engine's statistics — use [`analyze_engine`].
pub fn analyze_network(network: &QueryNetwork, shard_keys: &HashMap<String, usize>) -> Report {
    let mut report = Report::new();
    for cq in network.query_ids() {
        if let Some(info) = network.query(cq) {
            report.merge(check_plan(&info.plan, network));
        }
    }
    report.merge(determinism::audit(network, shard_keys));
    report.merge(sharing::lint(network));
    report
}

/// Runs all four passes over a live engine: plan inference and the
/// determinism audit over its network and shard keys, cost-attribution
/// conservation under `model`, and the sharing lints.
pub fn analyze_engine(engine: &DsmsEngine, model: &CostModel) -> Report {
    let mut report = analyze_network(engine.network(), engine.shard_keys());
    report.merge(conservation::check(engine, model));
    report
}
