//! Pass 3: cost-attribution conservation.
//!
//! The admission auction prices a shared network by attributing each
//! physical node's load to *every* query whose plan contains it
//! (`auction_instance` builds one auction operator per node and lists it
//! in each owning query's operator set). The mechanism's capacity
//! feasibility — and therefore every payment — rests on an accounting
//! identity:
//!
//! ```text
//! Σ_cq Σ_{n ∈ cq.nodes} load(n)  ==  Σ_n load(n) × refcount(n)
//! ```
//!
//! checked here in **exact integer micro-units** ([`cqac_core::units::Load::micro`] — no
//! float summation order to argue about). The identity holds exactly when
//! the per-node refcounts equal the number of attributing queries and no
//! query references a dead node, so those are verified first (NL031,
//! [`Code::AttributionDrift`]); an imbalance of the totals themselves is
//! NL030 ([`Code::CostNotConserved`]).
//!
//! Source-only queries (no nodes) are priced through private synthetic
//! delivery operators and correctly contribute zero to both sides.

use cqac_dsms::cost::{estimate_node_loads, CostModel};
use cqac_dsms::diag::{Code, Diagnostic, Report, Span};
use cqac_dsms::engine::DsmsEngine;
use cqac_dsms::network::{NodeId, QueryNetwork};
use std::collections::HashMap;

/// Checks the conservation identity over the engine's live network under
/// `model` (see module docs).
pub fn check(engine: &DsmsEngine, model: &CostModel) -> Report {
    let loads: HashMap<NodeId, u64> = estimate_node_loads(engine, model)
        .into_iter()
        .map(|e| (e.node, e.load.micro()))
        .collect();
    check_attribution(engine.network(), &loads)
}

/// The identity check itself, against caller-provided per-node loads in
/// micro-units — the engine-free core, so tests (and future verifiers of
/// optimizer rewrites) can drive it with synthetic loads.
pub fn check_attribution(network: &QueryNetwork, loads: &HashMap<NodeId, u64>) -> Report {
    let mut report = Report::new();

    // How many registered queries attribute each node.
    let mut attributions: HashMap<NodeId, u32> = HashMap::new();
    let mut attributed_total: u128 = 0;
    for cq in network.query_ids() {
        let Some(info) = network.query(cq) else {
            continue;
        };
        for &n in &info.nodes {
            match loads.get(&n) {
                Some(&load) => {
                    *attributions.entry(n).or_insert(0) += 1;
                    attributed_total += u128::from(load);
                }
                None => {
                    report.push(Diagnostic::new(
                        Code::AttributionDrift,
                        Span::Query(cq.0),
                        format!(
                            "cq{} attributes cost to n{}, which is not a live node",
                            cq.0, n.0
                        ),
                    ));
                }
            }
        }
    }

    // Refcounts must equal the attribution counts node by node.
    let mut node_total: u128 = 0;
    for id in network.node_ids() {
        let Some(node) = network.node(id) else {
            continue;
        };
        let load = loads.get(&id).copied().unwrap_or(0);
        node_total += u128::from(load) * u128::from(node.refcount);
        let attributed = attributions.get(&id).copied().unwrap_or(0);
        if node.refcount != attributed {
            report.push(Diagnostic::new(
                Code::AttributionDrift,
                Span::Node(id.0),
                format!(
                    "n{} ({}) has refcount {} but {} attributing quer{}",
                    id.0,
                    node.kind,
                    node.refcount,
                    attributed,
                    if attributed == 1 { "y" } else { "ies" }
                ),
            ));
        }
    }

    if attributed_total != node_total {
        report.push(Diagnostic::new(
            Code::CostNotConserved,
            Span::Network,
            format!(
                "per-CQ attributed cost ({attributed_total} micro-units) does not \
                 equal the per-node total ({node_total} micro-units); the auction \
                 would price phantom or vanished load"
            ),
        ));
    }
    report
}
