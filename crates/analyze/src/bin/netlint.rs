//! `netlint` — the static network verifier CLI.
//!
//! Runs all four analysis passes (plan inference, determinism audit,
//! cost-attribution conservation, sharing lints) over the shipped
//! scenario networks.
//!
//! ```text
//! netlint [--deny-warnings] [--json] [--list] [SCENARIO...]
//! ```
//!
//! * `--deny-warnings` — exit nonzero on warnings too (the CI gate).
//! * `--json` — machine-readable diagnostics (one JSON object per
//!   scenario).
//! * `--list` — print the available scenarios and exit.
//! * `SCENARIO...` — verify only the named scenarios (default: all).
//!
//! Exit code: `0` clean, `1` diagnostics at the failing severity, `2`
//! usage error.

use cqac_analyze::scenarios::{self, Scenario};
use cqac_analyze::{analyze_engine, Report};
use cqac_dsms::cost::CostModel;
use std::process::ExitCode;

struct Options {
    deny_warnings: bool,
    json: bool,
    list: bool,
    names: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        deny_warnings: false,
        json: false,
        list: false,
        names: Vec::new(),
    };
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny-warnings" => opts.deny_warnings = true,
            "--json" => opts.json = true,
            "--list" => opts.list = true,
            "--help" | "-h" => {
                return Err(
                    "usage: netlint [--deny-warnings] [--json] [--list] [SCENARIO...]".to_string(),
                )
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag '{flag}'")),
            name => opts.names.push(name.to_string()),
        }
    }
    Ok(opts)
}

fn escape_json(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn verify(scenario: &Scenario) -> Report {
    let engine = scenario.build();
    // Analytic unit costs: the gate must be deterministic across
    // machines, so measured timings stay out of it.
    analyze_engine(&engine, &CostModel::default())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let available = scenarios::all();
    if opts.list {
        for s in &available {
            println!("{:<18} {}", s.name, s.description);
        }
        return ExitCode::SUCCESS;
    }
    let selected: Vec<&Scenario> = if opts.names.is_empty() {
        available.iter().collect()
    } else {
        let mut picked = Vec::new();
        for name in &opts.names {
            match available.iter().find(|s| s.name == *name) {
                Some(s) => picked.push(s),
                None => {
                    eprintln!("unknown scenario '{name}' (try --list)");
                    return ExitCode::from(2);
                }
            }
        }
        picked
    };

    let mut failed = false;
    for scenario in selected {
        let report = verify(scenario);
        let errors = report.num_errors();
        let warnings = report.num_warnings();
        if opts.json {
            println!(
                "{{\"scenario\":\"{}\",\"errors\":{},\"warnings\":{},\"diagnostics\":{}}}",
                escape_json(scenario.name),
                errors,
                warnings,
                report.to_json()
            );
        } else if report.is_clean() {
            println!("netlint: {} ... ok", scenario.name);
        } else {
            println!(
                "netlint: {} ... {} error(s), {} warning(s)",
                scenario.name, errors, warnings
            );
            print!("{report}");
        }
        if errors > 0 || (opts.deny_warnings && warnings > 0) {
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
