//! Pass 2: the determinism audit.
//!
//! The morsel scheduler's correctness argument (see `cqac-dsms`'s module
//! docs) rests on a classification the network computes physically, by
//! asking each operator for its `keyed_out` / `keyed_commutative` /
//! `keyed_partial` properties: which nodes may run *inside* the worker
//! shards against partitioned state, which must stay behind the
//! deterministic merge barrier, and which stateful members are order-free
//! (commutative absorption) versus order-sensitive (chain morsels).
//!
//! This pass **re-derives the same classification from the logical
//! plans** — partition-key flow through filters, projections, and fused
//! chains; join-key and group-key compatibility; exact-combine
//! eligibility of partial aggregates (ungrouped, or grouped at a
//! shard-incompatible group key) — and cross-checks the physical
//! [`KeyedPlan`] node by node. A divergence means one side's reasoning
//! is wrong, and the sharded run could silently reorder state mutations:
//! diagnostic NL020 ([`Code::KeyedClassificationDivergence`]). A
//! stateful member whose claimed commutativity contradicts the logical
//! derivation, a partial member with in-plan consumers, or a partial
//! member whose logical combine is order-sensitive (inexact — per-worker
//! partials would merge in a worker-dependent order) would let the
//! scheduler steal morsels across an order-sensitive operator:
//! diagnostic NL021 ([`Code::StatefulOrderUnsafe`]).
//!
//! Shard keys themselves are validated first (NL014, [`Code::BadShardKey`])
//! — an invalid key would otherwise reach `ops::shard_of_cell`'s
//! release-mode fallback.

use cqac_dsms::diag::{check_shard_key, Code, Diagnostic, Report, Span};
use cqac_dsms::network::{KeyedPlan, NodeId, QueryNetwork};
use cqac_dsms::plan::{AggFunc, LogicalPlan, StreamCatalog};
use cqac_dsms::types::{DataType, Schema};
use std::collections::HashMap;

/// What the logical re-derivation expects of one plan signature's
/// physical node.
#[derive(Clone, Debug, PartialEq)]
struct Expectation {
    /// In the keyed plan at all (member or partial member)?
    member: bool,
    /// A keyed *stateful* member (join / aggregate with partitioned
    /// state)?
    stateful: bool,
    /// A partial-aggregation member (per-worker partials, merge-barrier
    /// output)?
    partial: bool,
    /// For stateful operators: is absorption order-free (commutative)?
    /// `None` for stateless nodes, where the question does not arise.
    commutative: Option<bool>,
    /// The logical exact-combine derivation, recorded for every operator
    /// that *could* hold partitioned state — member or not — so a
    /// physical partial can be checked for order sensitivity even when
    /// the membership itself diverges. `None` where combining never
    /// happens (stateless operators, unions).
    exact: Option<bool>,
}

/// The result of classifying one logical sub-plan.
struct Derived {
    /// Sub-plan output schema (`None` after an unregistered stream — the
    /// plan pass reports that separately).
    schema: Option<Schema>,
    /// Whether this sub-plan's output is produced inside the keyed plan
    /// (so a downstream member may consume it shard-locally).
    covered: bool,
    /// The partition key's column position in the output, when covered
    /// and the key survived.
    key: Option<usize>,
}

/// Audits the network's keyed-plan classification against an independent
/// logical derivation (see module docs).
pub fn audit(network: &QueryNetwork, shard_keys: &HashMap<String, usize>) -> Report {
    let mut report = Report::new();

    // NL014: shard keys must fit their stream schemas. Keys configured
    // ahead of stream registration are deferred, exactly as the engine
    // defers their validation.
    let mut streams: Vec<(&String, usize)> = shard_keys.iter().map(|(s, &c)| (s, c)).collect();
    streams.sort();
    for (stream, column) in streams {
        if let Some(schema) = network.stream_schema(stream) {
            report.merge(check_shard_key(schema, stream, column));
        }
    }
    if report.has_errors() {
        // A bad shard key invalidates the whole classification; don't
        // pile divergence diagnostics on top of the root cause.
        return report;
    }

    // Logical derivation: one expectation per plan signature.
    let mut expectations: HashMap<String, Expectation> = HashMap::new();
    for cq in network.query_ids() {
        let Some(info) = network.query(cq) else {
            continue;
        };
        derive(&info.plan, network, shard_keys, &mut expectations);
    }

    // Physical classification.
    let keyed = network.keyed_plan(shard_keys);
    let mut physical: HashMap<NodeId, (bool, bool)> = HashMap::new(); // id → (stateful, partial)
    for n in &keyed.nodes {
        physical.insert(n.id, (n.stateful, n.partial));
        if n.partial && !n.internal.is_empty() {
            report.push(Diagnostic::new(
                Code::StatefulOrderUnsafe,
                Span::Node(n.id.0),
                format!(
                    "partial-aggregation member n{} has {} in-plan consumer(s); \
                     partial output is produced behind the merge barrier and \
                     must not feed shard-local execution",
                    n.id.0,
                    n.internal.len()
                ),
            ));
        }
    }

    // Cross-check every live node that has a logical expectation.
    for id in network.node_ids() {
        let Some(node) = network.node(id) else {
            continue;
        };
        let Some(expect) = expectations.get(&node.signature) else {
            // A physical member the logical derivation cannot explain is a
            // classification divergence; an out-of-plan node without an
            // expectation is just a signature the walk never produced
            // (cannot happen for registered queries, but stay lenient).
            if physical.contains_key(&id) {
                report.push(Diagnostic::new(
                    Code::KeyedClassificationDivergence,
                    Span::Node(id.0),
                    format!(
                        "keyed-plan member n{} ({}) has no logical derivation \
                         for signature {:?}",
                        id.0, node.kind, node.signature
                    ),
                ));
            }
            continue;
        };
        let actual = physical.get(&id);
        // NL021 first: a physical partial member whose logical combine is
        // order-sensitive would merge per-worker partials in a
        // worker-dependent order. Named before the membership
        // cross-check — such a node usually also diverges on membership,
        // but the order-safety violation is the operative risk.
        if actual.is_some_and(|&(_, partial)| partial) && expect.exact == Some(false) {
            report.push(Diagnostic::new(
                Code::StatefulOrderUnsafe,
                Span::Node(id.0),
                format!(
                    "n{} ({}) is classified a partial-aggregation member but its \
                     logical combine is inexact (order-sensitive); per-worker \
                     partials would combine in a worker-dependent order",
                    id.0, node.kind
                ),
            ));
        }
        if expect.member != actual.is_some() {
            report.push(Diagnostic::new(
                Code::KeyedClassificationDivergence,
                Span::Node(id.0),
                format!(
                    "n{} ({}): logical derivation says {} the keyed plan, \
                     the network classified it {}",
                    id.0,
                    node.kind,
                    if expect.member {
                        "member of"
                    } else {
                        "outside"
                    },
                    if actual.is_some() {
                        "inside"
                    } else {
                        "outside (merge barrier)"
                    },
                ),
            ));
            continue;
        }
        if let Some(&(stateful, partial)) = actual {
            if expect.stateful != stateful || expect.partial != partial {
                report.push(Diagnostic::new(
                    Code::KeyedClassificationDivergence,
                    Span::Node(id.0),
                    format!(
                        "n{} ({}): logical derivation expects stateful={} \
                         partial={}, network claims stateful={} partial={}",
                        id.0, node.kind, expect.stateful, expect.partial, stateful, partial
                    ),
                ));
            }
        }
        // Order safety of stateful operators: the physical commutativity
        // claim (which decides whether the scheduler may split a home
        // shard's work into independently stealable morsels) must match
        // the logical exact-combine derivation.
        if let Some(expected_commutative) = expect.commutative {
            let claimed = node.op.keyed_commutative();
            if claimed != expected_commutative {
                report.push(Diagnostic::new(
                    Code::StatefulOrderUnsafe,
                    Span::Node(id.0),
                    format!(
                        "n{} ({}): operator claims keyed_commutative={claimed} but the \
                         logical derivation proves {expected_commutative} — an \
                         order-sensitive absorption could be reordered by work stealing",
                        id.0, node.kind
                    ),
                ));
            }
        }
    }

    verify_barrier_coverage(network, &keyed, &mut report);
    report
}

/// Every stateful node must be *either* a verified keyed member (its
/// state partitions by the same key that partitions its input, checked
/// above) *or* entirely outside the keyed plan — fed whole, merged
/// batches on the control thread, behind the deterministic merge barrier.
/// A stateful node that is neither would see shard-interleaved input with
/// unpartitioned state. With the network's two-way classification this is
/// structural, so the check is a belt-and-braces invariant scan over the
/// keyed plan's internal edges: no member may feed a stateful
/// *non-member* in-plan (such an edge must be an exit).
fn verify_barrier_coverage(network: &QueryNetwork, keyed: &KeyedPlan, report: &mut Report) {
    for member in &keyed.nodes {
        for &(consumer_idx, _port) in &member.internal {
            let consumer = &keyed.nodes[consumer_idx];
            let Some(node) = network.node(consumer.id) else {
                continue;
            };
            let is_stateful_member = consumer.stateful;
            let claims_stateless = node.op.shard_kernel().is_some();
            if !is_stateful_member && !claims_stateless {
                report.push(Diagnostic::new(
                    Code::StatefulOrderUnsafe,
                    Span::Node(consumer.id.0),
                    format!(
                        "n{} receives in-plan (pre-merge) input but is neither a \
                         keyed stateful member nor stateless — it must sit behind \
                         the merge barrier",
                        consumer.id.0
                    ),
                ));
            }
        }
    }
}

/// Whether an aggregate's combine is exact — re-derived from the
/// *logical* function and input column type, independently of
/// `AggregateOp::combine_exact`: `Count`/`Min`/`Max` always are;
/// `Sum`/`Avg` only over integer inputs (the i128 accumulator), because
/// float addition does not associate.
fn combine_exact(func: AggFunc, input_type: Option<DataType>) -> bool {
    match func {
        AggFunc::Count | AggFunc::Min | AggFunc::Max => true,
        AggFunc::Sum | AggFunc::Avg => input_type == Some(DataType::Int),
    }
}

/// Classifies `plan` bottom-up, recording one [`Expectation`] per
/// sub-plan signature (signatures are canonical, so identical sub-plans
/// across queries agree by construction).
fn derive(
    plan: &LogicalPlan,
    catalog: &dyn StreamCatalog,
    shard_keys: &HashMap<String, usize>,
    out: &mut HashMap<String, Expectation>,
) -> Derived {
    let record = |out: &mut HashMap<String, Expectation>, e: Expectation| {
        out.insert(plan.signature(), e);
    };
    match plan {
        LogicalPlan::Source { stream } => Derived {
            schema: catalog.stream_schema(stream).cloned(),
            covered: shard_keys.contains_key(stream) && catalog.stream_schema(stream).is_some(),
            key: shard_keys.get(stream).copied(),
        },
        LogicalPlan::Filter { input, .. } => {
            let d = derive(input, catalog, shard_keys, out);
            record(
                out,
                Expectation {
                    member: d.covered,
                    stateful: false,
                    partial: false,
                    commutative: None,
                    exact: None,
                },
            );
            Derived {
                schema: d.schema,
                covered: d.covered,
                key: if d.covered { d.key } else { None },
            }
        }
        LogicalPlan::Project { input, columns } => {
            let d = derive(input, catalog, shard_keys, out);
            // The key survives a projection only at the first column that
            // forwards it verbatim — the same rule `ProjectOp::keyed_out`
            // applies positionally.
            let key = d
                .key
                .and_then(|k| columns.iter().position(|(_, e)| e.as_col() == Some(k)));
            record(
                out,
                Expectation {
                    member: d.covered,
                    stateful: false,
                    partial: false,
                    commutative: None,
                    exact: None,
                },
            );
            Derived {
                schema: plan_schema_of(plan, catalog),
                covered: d.covered,
                key: if d.covered { key } else { None },
            }
        }
        LogicalPlan::Join {
            left,
            right,
            left_key,
            right_key,
            ..
        } => {
            let dl = derive(left, catalog, shard_keys, out);
            let dr = derive(right, catalog, shard_keys, out);
            // A join runs inside the shards only when *both* inputs are
            // in-plan and partitioned exactly by their join keys: equal
            // join keys then already share a home shard, so per-shard
            // join state is exact.
            let member =
                dl.covered && dr.covered && dl.key == Some(*left_key) && dr.key == Some(*right_key);
            record(
                out,
                Expectation {
                    member,
                    stateful: member,
                    partial: false,
                    // Symmetric-hash-join absorption produces inline
                    // probe outputs whose order is observable: never
                    // order-free.
                    commutative: member.then_some(false),
                    exact: Some(false),
                },
            );
            Derived {
                schema: plan_schema_of(plan, catalog),
                covered: member,
                // The left key column keeps its position in the joined
                // output (left schema ⊕ right schema).
                key: member.then_some(*left_key),
            }
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            func,
            column,
            ..
        } => {
            let d = derive(input, catalog, shard_keys, out);
            let input_type = match (func, &d.schema) {
                (AggFunc::Count, _) => Some(DataType::Int),
                (_, Some(s)) => s.fields.get(*column).map(|f| f.data_type),
                (_, None) => None,
            };
            let exact = combine_exact(*func, input_type);
            match group_by {
                Some(g) => {
                    // Grouped: a *full* member exactly when the partition
                    // key IS the group key (equal groups share a home
                    // shard). At any other key the groups span shards, so
                    // the node joins only as a grouped *partial* member —
                    // per-worker hash partials, merge-barrier output —
                    // and only when its combine is exact.
                    let full = d.covered && d.key == Some(*g);
                    let partial = d.covered && !full && exact;
                    let member = full || partial;
                    record(
                        out,
                        Expectation {
                            member,
                            stateful: member,
                            partial,
                            commutative: member.then_some(exact),
                            exact: Some(exact),
                        },
                    );
                    Derived {
                        schema: plan_schema_of(plan, catalog),
                        covered: full,
                        // Output layout: (window_end, group, value) — the
                        // group key lands at column 1.
                        key: full.then_some(1),
                    }
                }
                None => {
                    // Ungrouped: the single group spans every shard, so
                    // the node joins the plan only as a *partial* member
                    // — and only when its combine is exact. Its output is
                    // always produced behind the merge barrier.
                    let member = d.covered && exact;
                    record(
                        out,
                        Expectation {
                            member,
                            stateful: member,
                            partial: member,
                            commutative: member.then_some(exact),
                            exact: Some(exact),
                        },
                    );
                    Derived {
                        schema: plan_schema_of(plan, catalog),
                        covered: false,
                        key: None,
                    }
                }
            }
        }
        LogicalPlan::Union { left, right } => {
            let _ = derive(left, catalog, shard_keys, out);
            let _ = derive(right, catalog, shard_keys, out);
            // Unions interleave two arrival orders: always a merge
            // barrier, never in-plan.
            record(
                out,
                Expectation {
                    member: false,
                    stateful: false,
                    partial: false,
                    commutative: None,
                    exact: None,
                },
            );
            Derived {
                schema: plan_schema_of(plan, catalog),
                covered: false,
                key: None,
            }
        }
    }
}

/// The sub-plan's output schema, when it has one (registered queries
/// always do; the plan pass reports the broken ones separately).
fn plan_schema_of(plan: &LogicalPlan, catalog: &dyn StreamCatalog) -> Option<Schema> {
    plan.output_schema(catalog).ok()
}
