//! Plan-mutation property tests: every known corruption of a
//! generator-valid plan is rejected by the static analyzer with its
//! specific `NL0xx` code — *before* any operator is built — so the
//! release-mode `debug_assert!(false, "… escaped … validation")` sites in
//! `ops.rs` are unreachable by construction. Tests run in debug mode, so
//! a tripped `debug_assert` aborts the test: pushing traffic after each
//! rejected mutation proves the engine never reached one.

use cqac_analyze::{analyze_plan, check_shard_key, Code};
use cqac_dsms::engine::DsmsEngine;
use cqac_dsms::expr::Expr;
use cqac_dsms::plan::{AggFunc, LogicalPlan};
use cqac_dsms::streams::{news_schema, quote_schema, NewsStream, StockStream};
use cqac_dsms::types::Value;
use proptest::prelude::*;

const SYMBOLS: [&str; 3] = ["IBM", "AAPL", "MSFT"];

fn engine() -> DsmsEngine {
    let mut e = DsmsEngine::new().with_max_batch_size(32);
    e.register_stream("quotes", quote_schema());
    e.register_stream("news", news_schema());
    e
}

/// Pushes deterministic traffic through the engine; in a debug build any
/// "escaped validation" `debug_assert` in `ops.rs` would abort here.
fn serve(e: &mut DsmsEngine) {
    let mut q = StockStream::new(&SYMBOLS, 1, 7);
    let mut n = NewsStream::new(&SYMBOLS, 3, 8);
    e.push_rows("quotes", q.next_batch(300));
    e.push_rows("news", n.next_batch(100));
}

/// Strategy: a structurally valid plan over the quotes stream — a filter
/// chain (schema-preserving) capped by nothing, a grouped aggregate, an
/// ungrouped aggregate, a symbol join with news, or a union.
fn valid_plan() -> impl Strategy<Value = LogicalPlan> {
    let predicate = (0usize..3, 1u32..30_000, 1i64..10_000, 0usize..3).prop_map(
        |(which, cents, volume, sym)| match which {
            0 => Expr::col(1).gt(Expr::lit(Value::Float(f64::from(cents) / 100.0))),
            1 => Expr::col(2).ge(Expr::lit(Value::Int(volume))),
            _ => Expr::col(0).eq(Expr::lit(Value::str(SYMBOLS[sym]))),
        },
    );
    let chain = proptest::collection::vec(predicate, 0..3).prop_map(|preds| {
        preds.into_iter().fold(
            LogicalPlan::source("quotes"),
            cqac_dsms::LogicalPlan::filter,
        )
    });
    (chain, 0usize..5, 1u64..5_000).prop_map(|(base, cap, window)| match cap {
        0 => base,
        1 => base.aggregate(Some(0), AggFunc::Count, 0, window),
        2 => base.aggregate(None, AggFunc::Sum, 2, window),
        3 => base.join(LogicalPlan::source("news"), 0, 0, window),
        _ => base.clone().union(base),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Agreement: on generator-valid plans the analyzer is clean, and
    /// admission accepts.
    #[test]
    fn valid_plans_verify_clean(plan in valid_plan()) {
        let mut e = engine();
        let report = analyze_plan(&plan, e.network());
        prop_assert!(report.is_clean(), "spurious diagnostics: {report}");
        prop_assert!(plan.output_schema(e.network()).is_ok());
        prop_assert!(e.add_query(plan).is_ok());
        serve(&mut e);
    }

    /// NL005 — the `ops.rs` join-side "unhashable join key escaped plan
    /// validation" site: a float join key is rejected by the analyzer and
    /// by admission, so `JoinOp::absorb_rows` never sees one.
    #[test]
    fn float_join_key_rejected_before_any_operator(base in valid_plan(), w in 1u64..1_000) {
        // Join the valid plan's *source* on the float price column.
        let plan = LogicalPlan::source("quotes").join(LogicalPlan::source("quotes"), 1, 1, w);
        let mut e = engine();
        let report = analyze_plan(&plan, e.network());
        prop_assert!(report.has_code(Code::UnhashableJoinKey), "{report}");
        prop_assert!(e.add_query(plan).is_err());
        // The network mutated nothing; valid traffic still serves.
        e.add_query(base).ok();
        serve(&mut e);
    }

    /// NL011 — the aggregate-side "unhashable group key escaped plan
    /// validation" sites: a float group-by column never reaches
    /// `AggregateOp`.
    #[test]
    fn float_group_key_rejected_before_any_operator(base in valid_plan(), w in 1u64..1_000) {
        let plan = LogicalPlan::source("quotes").aggregate(Some(1), AggFunc::Count, 0, w);
        let mut e = engine();
        let report = analyze_plan(&plan, e.network());
        prop_assert!(report.has_code(Code::UnhashableGroupKey), "{report}");
        prop_assert!(e.add_query(plan).is_err());
        e.add_query(base).ok();
        serve(&mut e);
    }

    /// NL014 — the `ops::shard_of_cell` "float shard key escaped
    /// validation" site: `set_shard_key` refuses the key, so a sharded
    /// run can never hash a float cell.
    #[test]
    fn float_shard_key_rejected_before_any_run(base in valid_plan(), shards in 2usize..5) {
        let mut e = engine().with_shards(shards);
        let schema = quote_schema();
        let report = check_shard_key(&schema, "quotes", 1);
        prop_assert!(report.has_code(Code::BadShardKey), "{report}");
        prop_assert!(e.set_shard_key("quotes", 1).is_err());
        prop_assert!(e.set_shard_key("quotes", 99).is_err());
        prop_assert_eq!(e.shard_key("quotes"), None);
        // A valid key in its place runs sharded without tripping anything.
        e.set_shard_key("quotes", 0).unwrap();
        e.add_query(base).ok();
        serve(&mut e);
    }

    /// Column-out-of-range corruptions each carry their own code.
    #[test]
    fn out_of_range_columns_each_have_a_code(base in valid_plan(), w in 1u64..1_000) {
        let cases = [
            (
                LogicalPlan::source("quotes").filter(Expr::col(9).gt(Expr::lit(Value::Int(0)))),
                Code::ExprType,
            ),
            (
                LogicalPlan::source("quotes").join(LogicalPlan::source("news"), 9, 0, w),
                Code::JoinKeyOutOfRange,
            ),
            (
                LogicalPlan::source("quotes").aggregate(Some(9), AggFunc::Count, 0, w),
                Code::GroupKeyOutOfRange,
            ),
            (
                LogicalPlan::source("quotes").aggregate(None, AggFunc::Sum, 9, w),
                Code::AggColumnOutOfRange,
            ),
        ];
        let mut e = engine();
        for (plan, code) in cases {
            let report = analyze_plan(&plan, e.network());
            prop_assert!(report.has_code(code), "expected {code}: {report}");
            prop_assert!(e.add_query(plan).is_err());
        }
        e.add_query(base).ok();
        serve(&mut e);
    }

    /// The remaining corruption classes: union schema mismatch, zero
    /// window, slide wider than the window, non-numeric aggregation,
    /// non-boolean predicate, unknown stream.
    #[test]
    fn remaining_corruptions_each_have_a_code(base in valid_plan()) {
        let cases = [
            (
                LogicalPlan::source("quotes").union(LogicalPlan::source("news")),
                Code::UnionSchemaMismatch,
            ),
            (
                LogicalPlan::source("quotes").join(LogicalPlan::source("news"), 0, 0, 0),
                Code::ZeroWindow,
            ),
            (
                LogicalPlan::source("quotes").sliding_aggregate(None, AggFunc::Count, 0, 10, 20),
                Code::SlideExceedsWindow,
            ),
            (
                LogicalPlan::source("quotes").aggregate(None, AggFunc::Sum, 0, 100),
                Code::AggColumnNotNumeric,
            ),
            (
                LogicalPlan::source("quotes").filter(Expr::col(2)),
                Code::PredicateNotBool,
            ),
            (LogicalPlan::source("nope"), Code::UnknownStream),
        ];
        let mut e = engine();
        for (plan, code) in cases {
            let report = analyze_plan(&plan, e.network());
            prop_assert!(report.has_code(code), "expected {code}: {report}");
            prop_assert!(e.add_query(plan).is_err());
        }
        e.add_query(base).ok();
        serve(&mut e);
    }

    /// NL020/NL021 — a physical node marked grouped-partial whose logical
    /// plan is order-sensitive: grafting an inexact grouped aggregate's
    /// signature onto a legitimate grouped-partial member makes the
    /// logical derivation prove the combine order-sensitive, so the audit
    /// must flag the order hazard (NL021) on top of the membership
    /// divergence (NL020) — before any `debug_assert` could trip at run
    /// time.
    #[test]
    fn grouped_partial_with_order_sensitive_logic_is_flagged(base in valid_plan(), w in 1u64..1_000) {
        use cqac_dsms::network::QueryNetwork;
        use std::collections::HashMap;
        let mut n = QueryNetwork::new();
        n.register_stream("quotes", quote_schema());
        // A grouped exact Count at a shard-incompatible group key
        // (volume, col 2 — the shard key is symbol, col 0) is a
        // legitimate grouped-partial member…
        let partial_plan = LogicalPlan::source("quotes").aggregate(Some(2), AggFunc::Count, 0, w);
        n.add_query(partial_plan.clone()).unwrap();
        // …while a float Avg grouped the same way is order-sensitive and
        // must stay a merge barrier.
        let sensitive = LogicalPlan::source("quotes").aggregate(Some(2), AggFunc::Avg, 1, w);
        n.add_query(sensitive.clone()).unwrap();
        let keys: HashMap<String, usize> = [("quotes".to_string(), 0)].into();
        prop_assert!(cqac_analyze::determinism::audit(&n, &keys).is_clean());

        // Mutation: graft the order-sensitive plan's signature onto the
        // partial member's physical node.
        let partial_node = n
            .node_ids()
            .into_iter()
            .find(|&id| n.node(id).unwrap().signature == partial_plan.signature())
            .expect("the grouped Count has a physical node");
        n.node_mut(partial_node).unwrap().signature = sensitive.signature();
        let report = cqac_analyze::determinism::audit(&n, &keys);
        prop_assert!(report.has_code(Code::StatefulOrderUnsafe), "{report}");
        prop_assert!(report.has_code(Code::KeyedClassificationDivergence), "{report}");

        // The corruption lives in the standalone network; a real engine
        // still admits and serves valid plans untouched.
        let mut e = engine();
        e.add_query(base).ok();
        serve(&mut e);
    }

    /// Accumulation: a plan with several independent corruptions reports
    /// them all in one pass.
    #[test]
    fn multiple_corruptions_all_reported(w in 1u64..1_000) {
        let plan = LogicalPlan::source("quotes")
            .filter(Expr::col(9).gt(Expr::lit(Value::Int(0))))
            .join(LogicalPlan::source("quotes").aggregate(Some(1), AggFunc::Count, 0, w), 1, 0, 0);
        let report = analyze_plan(&plan, engine().network());
        prop_assert!(report.has_code(Code::ExprType));
        prop_assert!(report.has_code(Code::UnhashableGroupKey));
        prop_assert!(report.has_code(Code::ZeroWindow));
        prop_assert!(report.num_errors() >= 3, "{report}");
    }
}
