//! Integration tests of the network-level passes: determinism audit,
//! cost-attribution conservation, and sharing lints — including the
//! corrupted-network cases each diagnostic exists for.

use cqac_analyze::{analyze_engine, conservation, determinism, scenarios, sharing, Code, Severity};
use cqac_dsms::cost::CostModel;
use cqac_dsms::engine::DsmsEngine;
use cqac_dsms::expr::Expr;
use cqac_dsms::network::{NodeId, QueryNetwork, Target};
use cqac_dsms::plan::{AggFunc, LogicalPlan};
use cqac_dsms::streams::{news_schema, quote_schema, StockStream};
use cqac_dsms::types::Value;
use std::collections::HashMap;

fn network() -> QueryNetwork {
    let mut n = QueryNetwork::new();
    n.register_stream("quotes", quote_schema());
    n.register_stream("news", news_schema());
    n
}

fn high_price(threshold: f64) -> LogicalPlan {
    LogicalPlan::source("quotes").filter(Expr::col(1).gt(Expr::lit(Value::Float(threshold))))
}

#[test]
fn shipped_scenarios_verify_clean() {
    for scenario in scenarios::all() {
        let engine = scenario.build();
        let report = analyze_engine(&engine, &CostModel::default());
        assert!(
            report.is_clean(),
            "scenario {} is not clean:\n{report}",
            scenario.name
        );
    }
}

#[test]
fn determinism_audit_is_clean_across_shard_key_mixes() {
    // Keyed, keyless, and partially keyed configurations must all verify:
    // the audit's logical derivation has to agree with the physical
    // classification in every mode, not just the fully-sharded one.
    let plans = [
        high_price(10.0).join(LogicalPlan::source("news"), 0, 0, 500),
        LogicalPlan::source("quotes").aggregate(Some(0), AggFunc::Count, 0, 100),
        LogicalPlan::source("quotes").aggregate(None, AggFunc::Count, 0, 100),
        LogicalPlan::source("quotes").aggregate(None, AggFunc::Avg, 1, 100),
        LogicalPlan::source("quotes")
            .project(vec![
                ("price".to_string(), Expr::col(1)),
                ("symbol".to_string(), Expr::col(0)),
            ])
            .aggregate(Some(1), AggFunc::Count, 0, 100),
        high_price(5.0).union(high_price(50.0)),
    ];
    let key_mixes: [&[(&str, usize)]; 3] = [&[], &[("quotes", 0)], &[("quotes", 0), ("news", 0)]];
    for keys in key_mixes {
        let mut n = network();
        for plan in &plans {
            n.add_query(plan.clone()).unwrap();
        }
        let shard_keys: HashMap<String, usize> =
            keys.iter().map(|(s, c)| (s.to_string(), *c)).collect();
        let report = determinism::audit(&n, &shard_keys);
        assert!(report.is_clean(), "keys {keys:?}:\n{report}");
    }
}

#[test]
fn determinism_audit_rejects_bad_shard_keys() {
    let mut n = network();
    n.add_query(high_price(10.0)).unwrap();
    let float_key: HashMap<String, usize> = [("quotes".to_string(), 1)].into();
    let report = determinism::audit(&n, &float_key);
    assert!(report.has_code(Code::BadShardKey), "{report}");
    let range_key: HashMap<String, usize> = [("quotes".to_string(), 7)].into();
    let report = determinism::audit(&n, &range_key);
    assert!(report.has_code(Code::BadShardKey), "{report}");
}

#[test]
fn interior_prefix_duplicate_is_flagged() {
    // The pinned fusion/sharing asymmetry: a chain fuses over interior
    // sub-plans without registering their signatures, so the same prefix
    // submitted *afterwards* gets its own node — duplicate work, flagged
    // as warning NL040.
    let mut n = network();
    let prefix = high_price(100.0);
    let chain = prefix
        .clone()
        .filter(Expr::col(0).eq(Expr::lit(Value::str("IBM"))));
    n.add_query(chain).unwrap();
    n.add_query(prefix.clone()).unwrap();
    let report = sharing::lint(&n);
    assert!(report.has_code(Code::InteriorPrefixDuplicate), "{report}");
    assert_eq!(report.num_errors(), 0, "a sharing gap is not an error");
    assert!(report
        .diagnostics
        .iter()
        .all(|d| d.severity == Severity::Warning));

    // The sharing-compatible order — prefix first — is clean.
    let mut n = network();
    n.add_query(prefix.clone()).unwrap();
    n.add_query(prefix.filter(Expr::col(0).eq(Expr::lit(Value::str("IBM")))))
        .unwrap();
    assert!(sharing::lint(&n).is_clean());
}

#[test]
fn unreachable_sink_is_an_error() {
    let mut n = network();
    let cq = n.add_query(high_price(100.0)).unwrap();
    assert!(sharing::lint(&n).is_clean());
    // Corrupt the wiring: drop the sink edge off the top node.
    let top = n.node_ids()[0];
    n.node_mut(top)
        .unwrap()
        .downstream
        .retain(|t| *t != Target::Sink(cq));
    let report = sharing::lint(&n);
    assert!(report.has_code(Code::UnreachableSink), "{report}");
    assert!(report.has_errors());
}

#[test]
fn refcount_drift_and_imbalance_are_detected() {
    let mut n = network();
    n.add_query(high_price(100.0)).unwrap();
    n.add_query(high_price(100.0)).unwrap(); // shared node, refcount 2
    let id = n.node_ids()[0];
    let loads: HashMap<NodeId, u64> = [(id, 1_000_000u64)].into();
    assert!(conservation::check_attribution(&n, &loads).is_clean());

    // Inflate the refcount: the node claims an attributing query that
    // does not exist, so the per-node total outgrows the per-CQ sum.
    n.node_mut(id).unwrap().refcount += 1;
    let report = conservation::check_attribution(&n, &loads);
    assert!(report.has_code(Code::AttributionDrift), "{report}");
    assert!(report.has_code(Code::CostNotConserved), "{report}");
}

#[test]
fn conservation_holds_on_a_live_calibrated_engine() {
    let mut e = DsmsEngine::new();
    e.register_stream("quotes", quote_schema());
    e.register_stream("news", news_schema());
    let shared = high_price(50.0);
    e.add_query(shared.clone()).unwrap();
    e.add_query(shared.clone()).unwrap();
    e.add_query(shared.aggregate(Some(0), AggFunc::Count, 0, 100))
        .unwrap();
    e.add_query(LogicalPlan::source("quotes")).unwrap(); // source-only
    let mut feed = StockStream::new(&["IBM", "AAPL"], 1, 11);
    e.push_rows("quotes", feed.next_batch(1_000));
    for model in [CostModel::default(), CostModel::measured()] {
        let report = conservation::check(&e, &model);
        assert!(report.is_clean(), "{report}");
    }
}

/// Dictionary encoding is a runtime representation, not a type: the
/// static verifier sees `DataType::Str` whether a string column arrives
/// as `Column::Str` or `Column::Dict`, so string-keyed plans verify and
/// run clean over a live engine whose ingestion boundary dict-encodes
/// every string column (and over feeds wide enough to decay back to
/// plain columns).
#[test]
fn dict_encoded_columns_are_invisible_to_schema_inference() {
    use cqac_dsms::types::{Column, DataType};
    let dict = Column::Dict {
        codes: vec![0, 1, 0],
        dict: vec!["IBM".into(), "AAPL".into()],
        extremes: (1, 0),
    };
    assert_eq!(dict.data_type(), DataType::Str);

    let string_plans = [
        LogicalPlan::source("quotes").filter(Expr::col(0).eq(Expr::lit(Value::str("IBM")))),
        high_price(10.0).join(LogicalPlan::source("news"), 0, 0, 100),
        LogicalPlan::source("quotes").aggregate(Some(0), AggFunc::Count, 0, 100),
    ];
    let mut e = DsmsEngine::new();
    e.register_stream("quotes", quote_schema());
    e.register_stream("news", news_schema());
    for plan in &string_plans {
        e.add_query(plan.clone()).unwrap();
    }
    let mut feed = StockStream::new(&["IBM", "AAPL"], 1, 11);
    e.push_rows("quotes", feed.next_batch(1_000));
    let report = analyze_engine(&e, &CostModel::default());
    assert!(report.is_clean(), "{report}");
}

#[test]
fn dead_node_is_a_warning() {
    // `remove_query` garbage-collects, so a dead node cannot arise
    // through the public mutation API; simulate the drift by inflating a
    // refcount so GC keeps the node when its only query leaves.
    let mut n = network();
    let keep = n.add_query(high_price(100.0)).unwrap();
    let gone = n.add_query(high_price(200.0)).unwrap();
    let orphan = n
        .query(gone)
        .unwrap()
        .nodes
        .first()
        .copied()
        .expect("filter query has a node");
    n.node_mut(orphan).unwrap().refcount += 1;
    assert!(n.remove_query(gone).is_some());
    let report = sharing::lint(&n);
    assert!(report.has_code(Code::DeadNode), "{report}");
    assert_eq!(report.num_errors(), 0);
    let _ = keep;
}
