//! The §V sybil-attack experiments: constructed attacks against each
//! mechanism, with the attacker's payoff accounting of Definition 16.

use cqac_core::analysis::sybil::{
    attacker_payoff, fair_share_attack, random_sybil_attack, table2_attack,
};
use cqac_core::mechanisms::MechanismKind;
use cqac_core::model::QueryId;
use cqac_core::units::Load;
use cqac_workload::{WorkloadGenerator, WorkloadParams};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Success statistics of one attack family against one mechanism.
#[derive(Clone, Debug)]
pub struct AttackStats {
    /// Mechanism label.
    pub mechanism: String,
    /// Attack family (`fair-share`, `random`, `table2`).
    pub attack: &'static str,
    /// Attacks attempted.
    pub trials: u64,
    /// Attacks that strictly increased attacker payoff.
    pub successes: u64,
    /// Mean payoff gain over successful attacks (dollars).
    pub mean_gain: f64,
}

/// Configuration for the sybil experiment.
#[derive(Clone, Debug)]
pub struct SybilConfig {
    /// Number of workload instances.
    pub instances: u64,
    /// Attacked users sampled per instance.
    pub samples: usize,
    /// Root seed.
    pub seed: u64,
    /// Workload shape.
    pub params: WorkloadParams,
    /// System capacity.
    pub capacity: f64,
}

impl SybilConfig {
    /// Default: 8 instances of 150 queries.
    pub fn quick() -> Self {
        Self {
            instances: 8,
            samples: 10,
            seed: 23,
            params: WorkloadParams {
                num_queries: 150,
                base_max_degree: 12,
                ..WorkloadParams::scaled(150)
            },
            capacity: 250.0,
        }
    }
}

/// Runs the attack families against CAF, CAF+, CAT, CAT+, and Two-price.
pub fn run_sybil_experiment(cfg: &SybilConfig) -> Vec<AttackStats> {
    let generator = WorkloadGenerator::new(cfg.params.clone(), cfg.seed);
    let kinds = [
        MechanismKind::Caf,
        MechanismKind::CafPlus,
        MechanismKind::Cat,
        MechanismKind::CatPlus,
        MechanismKind::TwoPrice,
    ];
    let mut stats: Vec<AttackStats> = Vec::new();
    for kind in kinds {
        for attack in ["fair-share", "random"] {
            stats.push(AttackStats {
                mechanism: kind.label().to_string(),
                attack,
                trials: 0,
                successes: 0,
                mean_gain: 0.0,
            });
        }
    }
    let mut gains: Vec<f64> = vec![0.0; stats.len()];

    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5151);
    for instance_idx in 0..cfg.instances {
        let inst = generator
            .base_workload(instance_idx)
            .to_instance(Load::from_units(cfg.capacity));
        let n = inst.num_queries() as u32;
        let run_seed = cfg.seed ^ instance_idx;
        for (ki, kind) in kinds.iter().enumerate() {
            let mech = kind.build();
            for _ in 0..cfg.samples {
                let q = QueryId(rng.random_range(0..n));
                // Fair-share attack (Theorem 15 construction).
                let attack = fair_share_attack(&inst, q, rng.random_range(2..8));
                let out = attacker_payoff(mech.as_ref(), &inst, &attack, run_seed);
                let si = ki * 2;
                stats[si].trials += 1;
                if out.succeeded() {
                    stats[si].successes += 1;
                    gains[si] += out.attack_payoff.as_f64() - out.baseline_payoff.as_f64();
                }
                // Random attack.
                let attack = random_sybil_attack(&inst, q, rng.random_range(1..4), &mut rng);
                let out = attacker_payoff(mech.as_ref(), &inst, &attack, run_seed);
                let si = ki * 2 + 1;
                stats[si].trials += 1;
                if out.succeeded() {
                    stats[si].successes += 1;
                    gains[si] += out.attack_payoff.as_f64() - out.baseline_payoff.as_f64();
                }
            }
        }
    }
    for (s, g) in stats.iter_mut().zip(gains) {
        s.mean_gain = if s.successes > 0 {
            g / s.successes as f64
        } else {
            0.0
        };
    }

    // The Table II construction is a single deterministic instance against
    // CAT+.
    let (original, attack) = table2_attack();
    let catplus = MechanismKind::CatPlus.build();
    let out = attacker_payoff(catplus.as_ref(), &original, &attack, 0);
    stats.push(AttackStats {
        mechanism: "CAT+".to_string(),
        attack: "table2",
        trials: 1,
        successes: u64::from(out.succeeded()),
        mean_gain: out.attack_payoff.as_f64() - out.baseline_payoff.as_f64(),
    });
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_matches_section5() {
        let mut cfg = SybilConfig::quick();
        cfg.instances = 3;
        cfg.samples = 6;
        let stats = run_sybil_experiment(&cfg);
        let total = |mech: &str| {
            stats
                .iter()
                .filter(|s| s.mechanism == mech && s.attack != "table2")
                .map(|s| s.successes)
                .sum::<u64>()
        };
        assert_eq!(total("CAT"), 0, "CAT is sybil-immune (Theorem 19)");
        assert!(
            total("CAF") > 0,
            "CAF is universally vulnerable (Theorem 15)"
        );
        let table2 = stats.iter().find(|s| s.attack == "table2").unwrap();
        assert_eq!(table2.successes, 1, "Table II beats CAT+ (Theorem 17)");
        assert!(table2.mean_gain > 80.0);
    }
}
