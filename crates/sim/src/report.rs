//! Plain-text tables and CSV artifacts for the experiment binaries.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A rectangular result table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table title (printed above, used as the CSV file stem).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of stringified cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn push_row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                let _ = write!(s, "{:>width$}", cell, width = widths[i]);
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// The table as CSV text.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV into `dir/<slug(title)>.csv`, creating the directory.
    pub fn write_csv(&self, dir: &Path) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let slug: String = self
            .title
            .chars()
            .map(|c| {
                if c.is_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect();
        let path = dir.join(format!("{slug}.csv"));
        fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Formats a float with sensible experiment precision.
pub fn fmt(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// A minimal `--flag value` argument parser for the experiment binaries.
#[derive(Clone, Debug, Default)]
pub struct Args {
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `std::env::args()` (skipping the binary name).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit iterator (for tests).
    pub fn parse<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut args = Args::default();
        let mut it = iter.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let takes_value = it.peek().is_some_and(|next| !next.starts_with("--"));
                if takes_value {
                    args.pairs.push((name.to_string(), it.next().unwrap()));
                } else {
                    args.flags.push(name.to_string());
                }
            }
        }
        args
    }

    /// A `--name value` string.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// A parsed `--name value`.
    pub fn get_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Whether a bare `--name` flag is present.
    pub fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// A comma-separated `--name a,b,c` list.
    pub fn get_list(&self, name: &str) -> Option<Vec<u32>> {
        self.get(name)
            .map(|v| v.split(',').filter_map(|p| p.trim().parse().ok()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns() {
        let mut t = Table::new("demo", &["degree", "CAF"]);
        t.push_row(vec!["1".into(), "123.4".into()]);
        t.push_row(vec!["60".into(), "7.0".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("degree"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1,5".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"1,5\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn args_parsing() {
        let a = Args::parse(
            ["--sets", "5", "--full", "--degrees", "1,10,60"]
                .into_iter()
                .map(String::from),
        );
        assert_eq!(a.get_parse("sets", 0u64), 5);
        assert!(a.has("full"));
        assert!(!a.has("quick"));
        assert_eq!(a.get_list("degrees"), Some(vec![1, 10, 60]));
        assert_eq!(a.get_parse("capacity", 15000.0), 15000.0);
    }

    #[test]
    fn fmt_precision() {
        assert_eq!(fmt(12345.6), "12346");
        assert_eq!(fmt(45.67), "45.7");
        assert_eq!(fmt(1.2345), "1.234");
    }
}
