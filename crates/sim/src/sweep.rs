//! The degree-of-sharing sweep shared by the Figure 4, Figure 5, and
//! utilization experiments: generate Table III workloads, derive the
//! instance at each max degree of sharing, run the mechanisms, average over
//! workload sets.

use cqac_core::mechanisms::MechanismKind;
use cqac_core::metrics::{Metrics, MetricsAccumulator};
use cqac_core::units::Load;
use cqac_workload::{apply_lying, LyingProfile, WorkloadGenerator, WorkloadParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Configuration for a sharing sweep.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Number of workload sets to average (the paper uses 50).
    pub sets: u64,
    /// Root seed; set `i` derives from `seed + i`.
    pub seed: u64,
    /// Max degrees of sharing to evaluate (x-axis of Figure 4).
    pub degrees: Vec<u32>,
    /// System capacity in units.
    pub capacity: f64,
    /// Mechanisms to run.
    pub mechanisms: Vec<MechanismKind>,
    /// Workload shape.
    pub params: WorkloadParams,
}

impl SweepConfig {
    /// A fast configuration: full 2000-query instances, coarse degree grid,
    /// few sets. Finishes in seconds; shapes match the full run.
    pub fn quick(capacity: f64) -> Self {
        Self {
            sets: 3,
            seed: 7,
            degrees: vec![1, 5, 10, 15, 20, 30, 40, 50, 60],
            capacity,
            mechanisms: vec![
                MechanismKind::Caf,
                MechanismKind::CafPlus,
                MechanismKind::Cat,
                MechanismKind::CatPlus,
                MechanismKind::TwoPrice,
            ],
            params: WorkloadParams::paper(),
        }
    }

    /// The paper's full configuration: 50 sets, every degree 1..=60.
    pub fn paper(capacity: f64) -> Self {
        Self {
            sets: 50,
            degrees: (1..=60).collect(),
            ..Self::quick(capacity)
        }
    }
}

/// Mean metrics for one (degree, mechanism) cell of a sweep.
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// Max degree of sharing (x-axis).
    pub degree: u32,
    /// Mechanism label.
    pub mechanism: String,
    /// Mean profit in dollars.
    pub profit: f64,
    /// Mean admission rate in percent.
    pub admission_rate: f64,
    /// Mean total user payoff in dollars.
    pub total_payoff: f64,
    /// Mean utilization in `[0, 1]`.
    pub utilization: f64,
}

/// Runs the truthful sharing sweep (Figures 4(a)–(f) and the utilization
/// numbers); cells are ordered by degree then mechanism.
pub fn run_sharing_sweep(cfg: &SweepConfig) -> Vec<SweepCell> {
    let generator = WorkloadGenerator::new(cfg.params.clone(), cfg.seed);
    let mechanisms: Vec<_> = cfg
        .mechanisms
        .iter()
        .map(|k| (k.label(), k.build()))
        .collect();
    let mut acc: BTreeMap<(u32, usize), MetricsAccumulator> = BTreeMap::new();

    for set in 0..cfg.sets {
        let sweep = generator.sharing_sweep_at(set, Load::from_units(cfg.capacity), &cfg.degrees);
        for (degree, inst) in sweep {
            for (mi, (_, mech)) in mechanisms.iter().enumerate() {
                let outcome = mech.run_seeded(&inst, cfg.seed ^ (set << 8) ^ u64::from(degree));
                let metrics = Metrics::truthful(&inst, &outcome);
                acc.entry((degree, mi)).or_default().add(&metrics);
            }
        }
    }

    acc.into_iter()
        .map(|((degree, mi), a)| SweepCell {
            degree,
            mechanism: mechanisms[mi].0.to_string(),
            profit: a.mean_profit(),
            admission_rate: a.mean_admission_rate(),
            total_payoff: a.mean_total_payoff(),
            utilization: a.mean_utilization(),
        })
        .collect()
}

/// One Figure 5 series point: profit of a mechanism/lying-variant.
#[derive(Clone, Debug)]
pub struct LyingCell {
    /// Max degree of sharing.
    pub degree: u32,
    /// Series label (`CAR`, `CAR-ML`, `CAR-AL`, `CAF`, `CAT`, `Two-price`).
    pub variant: String,
    /// Mean profit in dollars.
    pub profit: f64,
}

/// Runs the Figure 5 experiment: the three strategyproof mechanisms under
/// truthful bidding vs CAR under no/moderate/aggressive lying.
pub fn run_lying_sweep(cfg: &SweepConfig) -> Vec<LyingCell> {
    use cqac_core::mechanisms::{Caf, Car, Cat, Mechanism, TwoPrice};
    let generator = WorkloadGenerator::new(cfg.params.clone(), cfg.seed);
    let mut acc: BTreeMap<(u32, &'static str), (f64, u64)> = BTreeMap::new();
    let mut add = |degree: u32, variant: &'static str, profit: f64| {
        let entry = acc.entry((degree, variant)).or_insert((0.0, 0));
        entry.0 += profit;
        entry.1 += 1;
    };

    for set in 0..cfg.sets {
        let sweep = generator.sharing_sweep_at(set, Load::from_units(cfg.capacity), &cfg.degrees);
        let mut lie_rng = StdRng::seed_from_u64(cfg.seed ^ 0xF1E2_D3C4 ^ set);
        for (degree, inst) in sweep {
            let run_seed = cfg.seed ^ (set << 8) ^ u64::from(degree);
            add(
                degree,
                "CAF",
                Caf.run_seeded(&inst, run_seed).profit().as_f64(),
            );
            add(
                degree,
                "CAT",
                Cat.run_seeded(&inst, run_seed).profit().as_f64(),
            );
            add(
                degree,
                "Two-price",
                TwoPrice::default()
                    .run_seeded(&inst, run_seed)
                    .profit()
                    .as_f64(),
            );
            let car = Car::default();
            add(
                degree,
                "CAR",
                car.run_seeded(&inst, run_seed).profit().as_f64(),
            );
            let (ml, _) = apply_lying(&inst, LyingProfile::moderate(), &mut lie_rng);
            add(
                degree,
                "CAR-ML",
                car.run_seeded(&ml, run_seed).profit().as_f64(),
            );
            let (al, _) = apply_lying(&inst, LyingProfile::aggressive(), &mut lie_rng);
            add(
                degree,
                "CAR-AL",
                car.run_seeded(&al, run_seed).profit().as_f64(),
            );
        }
    }

    acc.into_iter()
        .map(|((degree, variant), (sum, n))| LyingCell {
            degree,
            variant: variant.to_string(),
            profit: sum / n as f64,
        })
        .collect()
}

/// Pivots sweep cells into a table: one row per degree, one column per
/// mechanism, valued by `metric`.
pub fn pivot(
    cells: &[SweepCell],
    metric: impl Fn(&SweepCell) -> f64,
) -> (Vec<u32>, Vec<String>, Vec<Vec<f64>>) {
    let mut degrees: Vec<u32> = cells.iter().map(|c| c.degree).collect();
    degrees.sort_unstable();
    degrees.dedup();
    let mut mechs: Vec<String> = Vec::new();
    for c in cells {
        if !mechs.contains(&c.mechanism) {
            mechs.push(c.mechanism.clone());
        }
    }
    let mut grid = vec![vec![f64::NAN; mechs.len()]; degrees.len()];
    for c in cells {
        let di = degrees.binary_search(&c.degree).unwrap();
        let mi = mechs.iter().position(|m| *m == c.mechanism).unwrap();
        grid[di][mi] = metric(c);
    }
    (degrees, mechs, grid)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> SweepConfig {
        SweepConfig {
            sets: 2,
            seed: 3,
            degrees: vec![1, 4, 8],
            capacity: 400.0,
            mechanisms: vec![
                MechanismKind::Caf,
                MechanismKind::Cat,
                MechanismKind::TwoPrice,
            ],
            params: WorkloadParams {
                num_queries: 120,
                base_max_degree: 8,
                ..WorkloadParams::scaled(120)
            },
        }
    }

    #[test]
    fn sweep_produces_full_grid() {
        let cells = run_sharing_sweep(&tiny_config());
        assert_eq!(cells.len(), 3 * 3);
        for c in &cells {
            assert!(c.admission_rate >= 0.0 && c.admission_rate <= 100.0);
            assert!(c.utilization >= 0.0 && c.utilization <= 1.0);
            assert!(c.profit >= 0.0);
        }
    }

    #[test]
    fn admission_rises_with_sharing_for_density_mechanisms() {
        // Figure 4(a)'s headline shape: more sharing → more admitted.
        let cells = run_sharing_sweep(&tiny_config());
        let caf_low = cells
            .iter()
            .find(|c| c.degree == 1 && c.mechanism == "CAF")
            .unwrap();
        let caf_high = cells
            .iter()
            .find(|c| c.degree == 8 && c.mechanism == "CAF")
            .unwrap();
        assert!(
            caf_high.admission_rate > caf_low.admission_rate,
            "CAF admission {:.1}% at degree 8 vs {:.1}% at degree 1",
            caf_high.admission_rate,
            caf_low.admission_rate
        );
    }

    #[test]
    fn lying_sweep_has_all_variants() {
        let mut cfg = tiny_config();
        cfg.degrees = vec![4];
        let cells = run_lying_sweep(&cfg);
        let variants: Vec<&str> = cells.iter().map(|c| c.variant.as_str()).collect();
        for v in ["CAR", "CAR-ML", "CAR-AL", "CAF", "CAT", "Two-price"] {
            assert!(variants.contains(&v), "missing variant {v}");
        }
    }

    #[test]
    fn pivot_shapes() {
        let cells = run_sharing_sweep(&tiny_config());
        let (degrees, mechs, grid) = pivot(&cells, |c| c.profit);
        assert_eq!(degrees, vec![1, 4, 8]);
        assert_eq!(mechs.len(), 3);
        assert_eq!(grid.len(), 3);
        assert!(grid.iter().flatten().all(|v| v.is_finite()));
    }
}
