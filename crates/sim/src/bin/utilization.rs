//! §VI-B utilization: "all proposed mechanisms admit queries so as to
//! utilize more than 98 percent of the system capacity, except for
//! Two-price which utilizes between 96 and 98 percent."
//!
//! ```text
//! cargo run -p cqac-sim --release --bin utilization -- --sets 5
//! ```

use cqac_sim::report::{Args, Table};
use cqac_sim::sweep::{pivot, run_sharing_sweep, SweepConfig};

fn main() {
    let args = Args::from_env();
    let capacity = args.get_parse("capacity", 15_000.0);
    let mut cfg = if args.has("paper") {
        SweepConfig::paper(capacity)
    } else {
        SweepConfig::quick(capacity)
    };
    cfg.sets = args.get_parse("sets", cfg.sets);
    if let Some(degrees) = args.get_list("degrees") {
        cfg.degrees = degrees;
    }
    eprintln!(
        "measuring utilization: capacity {capacity}, {} sets ...",
        cfg.sets
    );
    let cells = run_sharing_sweep(&cfg);
    let (degrees, mechs, grid) = pivot(&cells, |c| c.utilization * 100.0);

    let mut headers = vec!["degree".to_string()];
    headers.extend(mechs.iter().cloned());
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(format!("utilization %, capacity {capacity}"), &headers_ref);
    for (di, degree) in degrees.iter().enumerate() {
        let mut row = vec![degree.to_string()];
        row.extend(grid[di].iter().map(|v| format!("{v:.2}")));
        table.push_row(row);
    }
    print!("{}", table.render());

    // Mechanism-level means (the paper's headline numbers).
    let mut summary = Table::new("utilization summary %", &["mechanism", "mean"]);
    for (mi, m) in mechs.iter().enumerate() {
        let mean: f64 = grid.iter().map(|row| row[mi]).sum::<f64>() / grid.len() as f64;
        summary.push_row(vec![m.clone(), format!("{mean:.2}")]);
    }
    print!("{}", summary.render());
    match summary.write_csv(&cqac_sim::results_dir()) {
        Ok(path) => println!("[csv] {}", path.display()),
        Err(e) => eprintln!("[csv] write failed: {e}"),
    }
}
