//! Measured vs. analytic unit costs — wires `CostModel::measured()` (the
//! engine's per-batch timings normalized per tuple) into an experiment next
//! to the analytic unit costs every other runner uses.
//!
//! A representative shared network — a shared high-price filter, a fused
//! filter→filter→project chain, a grouped aggregate, and a quotes⋈news
//! join — is calibrated by replaying a deterministic feed, then lowered
//! into auction loads twice: once with the analytic per-operator constants
//! and once with the measured µs/tuple. The two unit-cost tables are
//! printed side by side; the final column is the ratio of the resulting
//! auction loads, i.e. how much the admission prices would shift if the
//! center billed measured rather than modeled work.
//!
//! ```text
//! cargo run -p cqac-sim --release --bin measured_costs
//! cargo run -p cqac-sim --release --bin measured_costs -- --tuples 50000
//! ```
//!
//! Measured timings are hardware-dependent (the *ratios* between operator
//! kinds are the reproducible signal, not the absolute µs), so this runner
//! reports; it does not assert.

use cqac_core::mechanisms::{Caf, Cat, Gv, Mechanism};
use cqac_core::model::{QueryId, UserId};
use cqac_core::units::{Load, Money};
use cqac_dsms::cost::{auction_instance, effective_capacity, estimate_node_loads, CostModel};
use cqac_dsms::engine::DsmsEngine;
use cqac_dsms::expr::Expr;
use cqac_dsms::network::CqId;
use cqac_dsms::plan::{AggFunc, LogicalPlan};
use cqac_dsms::streams::{news_schema, quote_schema, NewsStream, StockStream};
use cqac_dsms::types::Value;
use cqac_sim::report::{Args, Table};

const SYMBOLS: [&str; 8] = ["IBM", "AAPL", "MSFT", "ORCL", "SAP", "TSM", "AMD", "NVDA"];

fn main() {
    let args = Args::from_env();
    let tuples: usize = args.get_parse("tuples", 20_000usize);
    let batch: usize = args.get_parse("batch", 256usize);

    let mut engine = DsmsEngine::new().with_max_batch_size(batch);
    engine.register_stream("quotes", quote_schema());
    engine.register_stream("news", news_schema());

    let high =
        LogicalPlan::source("quotes").filter(Expr::col(1).gt(Expr::lit(Value::Float(100.0))));
    // The shared filter serves three queries; the chain fuses on top of it.
    let cqs: Vec<CqId> = vec![
        engine.add_query(high.clone()).expect("filter plan"),
        engine.add_query(high.clone()).expect("shared filter plan"),
        engine
            .add_query(
                high.clone()
                    .filter(Expr::col(2).gt(Expr::lit(Value::Int(500))))
                    .project(vec![
                        ("symbol".to_string(), Expr::col(0)),
                        ("price".to_string(), Expr::col(1)),
                    ]),
            )
            .expect("fused chain plan"),
        engine
            .add_query(LogicalPlan::source("quotes").aggregate(Some(0), AggFunc::Avg, 1, 1_000))
            .expect("aggregate plan"),
        engine
            .add_query(high.clone().join(LogicalPlan::source("news"), 0, 0, 250))
            .expect("join plan"),
    ];

    eprintln!(
        "calibrating {tuples} quotes + {} news (batch {batch}) ...",
        tuples / 4
    );
    let mut quotes = StockStream::new(&SYMBOLS, 1, 42);
    let mut news = NewsStream::new(&SYMBOLS, 4, 43);
    engine.push_rows("quotes", quotes.next_batch(tuples));
    engine.push_rows("news", news.next_batch(tuples / 4));

    // Static verification gate: the cost comparison below only means
    // anything if the shared network it prices is well-formed and its
    // attribution is conserved, so run the full analyzer before printing.
    let verification = cqac_analyze::analyze_engine(&engine, &CostModel::default());
    assert!(
        verification.is_clean(),
        "calibrated network failed static verification:\n{verification}"
    );
    eprintln!("netlint: calibrated network verifies clean");

    let analytic = estimate_node_loads(&engine, &CostModel::default());
    let measured = estimate_node_loads(&engine, &CostModel::measured());

    let mut table = Table::new(
        "measured vs analytic unit costs",
        &[
            "node",
            "kind",
            "rate t/ms",
            "mean batch",
            "analytic cost",
            "measured us/t",
            "analytic load",
            "measured load",
            "load ratio",
        ],
    );
    for (a, m) in analytic.iter().zip(&measured) {
        assert_eq!(a.node, m.node, "estimators must walk the same nodes");
        let ratio = if a.load.as_f64() > 0.0 {
            m.load.as_f64() / a.load.as_f64()
        } else {
            f64::NAN
        };
        table.push_row(vec![
            a.node.to_string(),
            a.kind.to_string(),
            format!("{:.3}", a.input_rate),
            format!("{:.1}", a.mean_batch),
            format!("{:.3}", a.unit_cost),
            m.measured_us_per_tuple
                .map_or_else(|| "-".to_string(), |us| format!("{us:.4}")),
            format!("{:.4}", a.load.as_f64()),
            format!("{:.4}", m.load.as_f64()),
            format!("{ratio:.3}"),
        ]);
    }
    print!("{}", table.render());
    match table.write_csv(&cqac_sim::results_dir()) {
        Ok(path) => println!("[csv] {}", path.display()),
        Err(e) => eprintln!("[csv] write failed: {e}"),
    }

    let analytic_total: f64 = analytic.iter().map(|e| e.load.as_f64()).sum();
    let measured_total: f64 = measured.iter().map(|e| e.load.as_f64()).sum();
    println!(
        "\ntotal load: analytic {analytic_total:.4}, measured {measured_total:.4} \
         (ratio {:.3})",
        measured_total / analytic_total
    );
    println!(
        "Reading: analytic costs rank join > aggregate > filter by fiat; the\n\
         measured column shows what the columnar engine actually pays per\n\
         tuple on this hardware. A center billing measured work would scale\n\
         every admission price by the load ratio column."
    );

    // Full auction sweep on the calibrated network: the same bids priced
    // twice — once with the analytic seed loads every other experiment
    // uses, once with the measured loads — across scarcity levels and
    // mechanisms. The admitted-set delta column is the headline: which
    // queries the center's decision would flip if it billed measured
    // rather than modeled work. (Measured loads are hardware-dependent,
    // so this runner reports; it does not assert.)
    let bid_dollars = [30.0, 25.0, 40.0, 35.0, 50.0];
    let bids: Vec<(CqId, UserId, Money)> = cqs
        .iter()
        .zip(bid_dollars)
        .enumerate()
        .map(|(i, (&cq, d))| (cq, UserId(i as u32), Money::from_dollars(d)))
        .collect();
    let mechanisms: Vec<Box<dyn Mechanism>> = vec![Box::new(Cat), Box::new(Caf), Box::new(Gv)];
    let mut auction = Table::new(
        "auction sweep: analytic vs measured admitted sets",
        &[
            "mechanism",
            "capacity (x analytic total)",
            "admitted (analytic)",
            "admitted (measured)",
            "delta",
        ],
    );
    let admitted_set =
        |engine: &DsmsEngine, model: &CostModel, mechanism: &dyn Mechanism, cap: Load| {
            let (inst, _) = auction_instance(engine, &bids, cap, model);
            let outcome = mechanism.run_seeded(&inst, 7);
            (0..bids.len())
                .filter(|&i| outcome.is_winner(QueryId(i as u32)))
                .collect::<Vec<usize>>()
        };
    for mechanism in &mechanisms {
        for scarcity in [0.3, 0.6, 1.0] {
            let cap = Load::from_units(analytic_total * scarcity);
            let a = admitted_set(&engine, &CostModel::default(), mechanism.as_ref(), cap);
            let m = admitted_set(&engine, &CostModel::measured(), mechanism.as_ref(), cap);
            let delta: Vec<String> = a
                .iter()
                .filter(|q| !m.contains(q))
                .map(|q| format!("-q{q}"))
                .chain(
                    m.iter()
                        .filter(|q| !a.contains(q))
                        .map(|q| format!("+q{q}")),
                )
                .collect();
            let fmt = |set: &[usize]| {
                if set.is_empty() {
                    "-".to_string()
                } else {
                    set.iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(",")
                }
            };
            auction.push_row(vec![
                mechanism.name().to_string(),
                format!("{scarcity:.1}"),
                fmt(&a),
                fmt(&m),
                if delta.is_empty() {
                    "=".to_string()
                } else {
                    delta.join(" ")
                },
            ]);
        }
    }
    print!("{}", auction.render());
    match auction.write_csv(&cqac_sim::results_dir()) {
        Ok(path) => println!("[csv] {}", path.display()),
        Err(e) => eprintln!("[csv] write failed: {e}"),
    }
    println!(
        "Reading: '=' rows mean the measured cost model would not change\n\
         the admitted set at that scarcity; -qN/+qN name the queries the\n\
         switch would reject/admit. Deltas concentrate where measured\n\
         per-tuple times disagree most with the analytic ranking (joins\n\
         and aggregates vs cheap fused chains)."
    );

    // Shard sweep: the same shared-filter workload through the parallel
    // executor. The work columns are deterministic (sharding partitions
    // rows, never duplicates them); wall clock depends on core count.
    let mut sweep = Table::new(
        "shard sweep (32 shared filters)",
        &[
            "shards",
            "tuples processed",
            "elapsed ms",
            "ktuples/s",
            "effective capacity (per-core 1.0)",
        ],
    );
    let mut baseline_work = None;
    for shards in [1usize, 2, 4] {
        let mut e = DsmsEngine::new()
            .with_max_batch_size(batch)
            .with_shards(shards);
        e.register_stream("quotes", quote_schema());
        for _ in 0..32 {
            e.add_query(high.clone()).expect("filter plan");
        }
        let rows = StockStream::new(&SYMBOLS, 1, 42).next_batch(tuples);
        let start = std::time::Instant::now();
        e.push_rows("quotes", rows);
        let elapsed = start.elapsed();
        let work = e.tuples_processed();
        assert_eq!(
            *baseline_work.get_or_insert(work),
            work,
            "sharding must not change per-row work"
        );
        sweep.push_row(vec![
            shards.to_string(),
            work.to_string(),
            format!("{:.2}", elapsed.as_secs_f64() * 1e3),
            format!("{:.1}", tuples as f64 / elapsed.as_secs_f64() / 1e3),
            format!(
                "{:.1}",
                effective_capacity(cqac_core::units::Load::from_units(1.0), shards).as_f64()
            ),
        ]);
    }
    print!("{}", sweep.render());
    match sweep.write_csv(&cqac_sim::results_dir()) {
        Ok(path) => println!("[csv] {}", path.display()),
        Err(e) => eprintln!("[csv] write failed: {e}"),
    }
}
