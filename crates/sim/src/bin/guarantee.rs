//! Theorems 11–12 — Two-price's expected profit versus the constant-pricing
//! benchmark bounds `OPT_C − 2h` (with duplicate repair) and `OPT_C − d·h`
//! (polynomial variant).
//!
//! ```text
//! cargo run -p cqac-sim --release --bin guarantee
//! cargo run -p cqac-sim --release --bin guarantee -- --sets 5 --trials 50
//! ```

use cqac_sim::guarantee::{run_guarantee_experiment, GuaranteeConfig};
use cqac_sim::report::{fmt, Args, Table};

fn main() {
    let args = Args::from_env();
    let mut cfg = GuaranteeConfig::quick();
    cfg.sets = args.get_parse("sets", cfg.sets);
    cfg.trials = args.get_parse("trials", cfg.trials);
    cfg.capacity = args.get_parse("capacity", cfg.capacity);
    if let Some(degrees) = args.get_list("degrees") {
        cfg.degrees = degrees;
    }
    eprintln!(
        "auditing the profit guarantee on {} sets x {} degrees x {} partition draws ...",
        cfg.sets,
        cfg.degrees.len(),
        cfg.trials
    );
    let rows = run_guarantee_experiment(&cfg);

    let mut table = Table::new(
        "Two-price profit guarantee",
        &[
            "set",
            "degree",
            "OPT_C",
            "h",
            "d",
            "E[two-price]",
            "OPT_C-2h",
            "E[poly]",
            "OPT_C-dh",
            "E[distinct]",
            "bound[distinct]",
        ],
    );
    let mut full_ok = 0;
    let mut poly_ok = 0;
    let mut distinct_ok = 0;
    for r in &rows {
        if r.two_price >= r.bound_full {
            full_ok += 1;
        }
        if r.two_price_poly >= r.bound_poly {
            poly_ok += 1;
        }
        if r.two_price_distinct >= r.bound_distinct {
            distinct_ok += 1;
        }
        table.push_row(vec![
            r.set.to_string(),
            r.degree.to_string(),
            fmt(r.optc),
            fmt(r.h),
            r.d.to_string(),
            fmt(r.two_price),
            fmt(r.bound_full),
            fmt(r.two_price_poly),
            fmt(r.bound_poly),
            fmt(r.two_price_distinct),
            fmt(r.bound_distinct),
        ]);
    }
    print!("{}", table.render());
    match table.write_csv(&cqac_sim::results_dir()) {
        Ok(path) => println!("[csv] {}", path.display()),
        Err(e) => eprintln!("[csv] write failed: {e}"),
    }
    println!(
        "\nTheorem 11 bound held on {full_ok}/{} raw instances and {distinct_ok}/{}\n\
         distinctness-perturbed instances; Theorem 12 bound on {poly_ok}/{}.\n\
         Table III's integer Zipf bids violate the theorem's distinct-valuation\n\
         assumption: whole tie groups at the quoted price are excluded by the\n\
         'strictly above' rule. Perturbing every bid by <0.2 cents restores it.",
        rows.len(),
        rows.len(),
        rows.len()
    );
}
