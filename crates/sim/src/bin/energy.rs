//! §VII extension — profit versus operating capacity with a linear energy
//! cost: the most profitable operating point is below full capacity.
//!
//! ```text
//! cargo run -p cqac-sim --release --bin energy
//! cargo run -p cqac-sim --release --bin energy -- --degree 60 --sets 5
//! ```

use cqac_sim::energy::{best_fractions, run_energy_sweep, EnergyConfig};
use cqac_sim::report::{fmt, Args, Table};

fn main() {
    let args = Args::from_env();
    let mut cfg = EnergyConfig::quick();
    cfg.sets = args.get_parse("sets", cfg.sets);
    cfg.degree = args.get_parse("degree", cfg.degree);
    cfg.installed_capacity = args.get_parse("capacity", cfg.installed_capacity);
    cfg.energy_cost_per_unit = args.get_parse("energy-cost", cfg.energy_cost_per_unit);
    eprintln!(
        "sweeping {} operating fractions at degree {} over {} sets ...",
        cfg.fractions.len(),
        cfg.degree,
        cfg.sets
    );
    let cells = run_energy_sweep(&cfg);

    let mut table = Table::new(
        "energy capacity sweep",
        &["fraction", "mechanism", "profit $", "energy $", "net $"],
    );
    for c in &cells {
        table.push_row(vec![
            format!("{:.0}%", c.fraction * 100.0),
            c.mechanism.clone(),
            fmt(c.profit),
            fmt(c.energy_cost),
            fmt(c.net_profit),
        ]);
    }
    print!("{}", table.render());

    let mut best = Table::new(
        "most profitable operating point",
        &["mechanism", "fraction", "net $"],
    );
    for (m, fraction, net) in best_fractions(&cells) {
        best.push_row(vec![m, format!("{:.0}%", fraction * 100.0), fmt(net)]);
    }
    print!("{}", best.render());
    match table.write_csv(&cqac_sim::results_dir()) {
        Ok(path) => println!("[csv] {}", path.display()),
        Err(e) => eprintln!("[csv] write failed: {e}"),
    }
}
