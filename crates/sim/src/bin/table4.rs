//! Table IV — mean mechanism runtime (ms) on 2000-query workloads at
//! capacity 15,000.
//!
//! ```text
//! cargo run -p cqac-sim --release --bin table4
//! cargo run -p cqac-sim --release --bin table4 -- --sets 5 --degrees 1,20,40,60
//! ```

use cqac_sim::report::{Args, Table};
use cqac_sim::runtime::{run_runtime_experiment, RuntimeConfig};

fn main() {
    let args = Args::from_env();
    let mut cfg = RuntimeConfig::quick();
    cfg.sets = args.get_parse("sets", cfg.sets);
    cfg.capacity = args.get_parse("capacity", cfg.capacity);
    if let Some(degrees) = args.get_list("degrees") {
        cfg.degrees = degrees;
    }
    eprintln!(
        "timing mechanisms on {} sets x {} degrees of 2000-query workloads ...",
        cfg.sets,
        cfg.degrees.len()
    );
    let rows = run_runtime_experiment(&cfg);

    let mut table = Table::new(
        format!("Table IV runtime ms, capacity {}", cfg.capacity),
        &["mechanism", "mean ms", "runs"],
    );
    for r in &rows {
        table.push_row(vec![
            r.mechanism.clone(),
            format!("{:.3}", r.mean_ms),
            r.runs.to_string(),
        ]);
    }
    print!("{}", table.render());
    match table.write_csv(&cqac_sim::results_dir()) {
        Ok(path) => println!("[csv] {}", path.display()),
        Err(e) => eprintln!("[csv] write failed: {e}"),
    }
    println!(
        "\nPaper (Java, Xeon 2.3GHz): Random 0.92, GV 2.0, Two-price 3.7,\n\
         CAF 7.1, CAF+ 12555.5, CAT 7.3, CAT+ 10091.2 — the reproduction\n\
         target is the ordering and the CAF->CAF+ / CAT->CAT+ blowup."
    );
}
