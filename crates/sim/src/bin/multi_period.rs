//! §VII extension — subscription categories (daily/weekly/monthly) with
//! partitioned capacity and per-category re-auctions.
//!
//! ```text
//! cargo run -p cqac-sim --release --bin multi_period
//! cargo run -p cqac-sim --release --bin multi_period -- --days 56
//! ```

use cqac_sim::multi_period::{run_multi_period, MultiPeriodConfig};
use cqac_sim::report::{fmt, Args, Table};

fn main() {
    let args = Args::from_env();
    let mut cfg = MultiPeriodConfig::quick();
    cfg.days = args.get_parse("days", cfg.days);
    cfg.capacity = args.get_parse("capacity", cfg.capacity);
    cfg.seed = args.get_parse("seed", cfg.seed);
    eprintln!(
        "simulating {} days, {} categories, mechanism {} ...",
        cfg.days,
        cfg.categories.len(),
        cfg.mechanism.label()
    );
    let lines = run_multi_period(&cfg);

    let mut table = Table::new(
        "multi-period subscription categories",
        &["day", "auctions", "admitted", "revenue $", "cumulative $"],
    );
    for l in &lines {
        table.push_row(vec![
            l.day.to_string(),
            l.auctions.join("+"),
            l.admitted.to_string(),
            fmt(l.revenue),
            fmt(l.cumulative),
        ]);
    }
    print!("{}", table.render());
    match table.write_csv(&cqac_sim::results_dir()) {
        Ok(path) => println!("[csv] {}", path.display()),
        Err(e) => eprintln!("[csv] write failed: {e}"),
    }
    println!(
        "\nEach category re-auctions on its own cadence; the composite scheme\n\
         remains bid-strategyproof because every per-category auction is an\n\
         independent strategyproof auction (§VII)."
    );
}
