//! Runs every experiment with quick defaults — a one-shot regeneration of
//! all tables and figures (see EXPERIMENTS.md).
//!
//! ```text
//! cargo run -p cqac-sim --release --bin all_experiments
//! ```

use std::process::Command;

fn main() {
    let binaries: &[(&str, &[&str])] = &[
        ("table1", &[]),
        ("fig4", &["--all"]),
        ("fig5", &[]),
        ("utilization", &[]),
        ("table4", &[]),
        ("sybil", &[]),
        ("guarantee", &[]),
        ("multi_period", &[]),
        ("energy", &[]),
        ("measured_costs", &[]),
    ];
    let self_path = std::env::current_exe().expect("current exe");
    let bin_dir = self_path.parent().expect("bin dir");
    for (bin, args) in binaries {
        println!("\n################ {bin} ################\n");
        let status = Command::new(bin_dir.join(bin))
            .args(*args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            eprintln!("{bin} exited with {status}");
            std::process::exit(1);
        }
    }
    println!("\nAll experiments complete; CSVs in ./results/");
}
