//! §V sybil-attack experiments: success rates of the Theorem 15 fair-share
//! attack, randomized attacks, and the Table II construction against CAT+.
//!
//! ```text
//! cargo run -p cqac-sim --release --bin sybil
//! cargo run -p cqac-sim --release --bin sybil -- --instances 20 --samples 20
//! ```

use cqac_sim::report::{fmt, Args, Table};
use cqac_sim::sybil_exp::{run_sybil_experiment, SybilConfig};

fn main() {
    let args = Args::from_env();
    let mut cfg = SybilConfig::quick();
    cfg.instances = args.get_parse("instances", cfg.instances);
    cfg.samples = args.get_parse("samples", cfg.samples);
    eprintln!(
        "attacking {} instances x {} sampled users per mechanism ...",
        cfg.instances, cfg.samples
    );
    let stats = run_sybil_experiment(&cfg);

    let mut table = Table::new(
        "sybil attack outcomes",
        &["mechanism", "attack", "successes", "trials", "mean gain $"],
    );
    for s in &stats {
        table.push_row(vec![
            s.mechanism.clone(),
            s.attack.to_string(),
            s.successes.to_string(),
            s.trials.to_string(),
            fmt(s.mean_gain),
        ]);
    }
    print!("{}", table.render());
    match table.write_csv(&cqac_sim::results_dir()) {
        Ok(path) => println!("[csv] {}", path.display()),
        Err(e) => eprintln!("[csv] write failed: {e}"),
    }
    println!(
        "\nExpected (§V): CAT shows zero successes (Theorem 19); the\n\
         fair-share attack reliably beats CAF/CAF+ (Theorem 15); the Table II\n\
         construction beats CAT+ with a gain of about $88 (Theorem 17)."
    );
}
