//! Figure 5 — profit of the strategyproof mechanisms (CAF, CAT, Two-price)
//! versus CAR under no / moderate / aggressive lying, capacity 15,000.
//!
//! ```text
//! cargo run -p cqac-sim --release --bin fig5 -- --sets 5
//! cargo run -p cqac-sim --release --bin fig5 -- --paper
//! ```

use cqac_sim::report::{fmt, Args, Table};
use cqac_sim::sweep::{run_lying_sweep, SweepConfig};

fn main() {
    let args = Args::from_env();
    let capacity = args.get_parse("capacity", 15_000.0);
    let cfg = if args.has("paper") {
        SweepConfig::paper(capacity)
    } else {
        let mut cfg = SweepConfig::quick(capacity);
        cfg.sets = args.get_parse("sets", cfg.sets);
        if let Some(degrees) = args.get_list("degrees") {
            cfg.degrees = degrees;
        }
        cfg
    };
    eprintln!(
        "running lying sweep: capacity {capacity}, {} sets, {} degrees ...",
        cfg.sets,
        cfg.degrees.len()
    );
    let cells = run_lying_sweep(&cfg);

    let variants = ["CAF", "CAT", "Two-price", "CAR", "CAR-ML", "CAR-AL"];
    let mut degrees: Vec<u32> = cells.iter().map(|c| c.degree).collect();
    degrees.sort_unstable();
    degrees.dedup();

    let mut headers = vec!["degree"];
    headers.extend(variants);
    let mut table = Table::new(
        format!("Fig 5 profit under lying, capacity {capacity}"),
        &headers,
    );
    for degree in degrees {
        let mut row = vec![degree.to_string()];
        for v in variants {
            let cell = cells
                .iter()
                .find(|c| c.degree == degree && c.variant == v)
                .expect("complete grid");
            row.push(fmt(cell.profit));
        }
        table.push_row(row);
    }
    print!("{}", table.render());
    match table.write_csv(&cqac_sim::results_dir()) {
        Ok(path) => println!("[csv] {}", path.display()),
        Err(e) => eprintln!("[csv] write failed: {e}"),
    }
    println!(
        "\nExpected shape: CAR-ML and CAR-AL sit below CAR; the three\n\
         strategyproof mechanisms' profit is unaffected by lying incentives."
    );
}
