//! Table I / Table V — empirical audit of strategyproofness and sybil
//! immunity claims.
//!
//! ```text
//! cargo run -p cqac-sim --release --bin table1
//! cargo run -p cqac-sim --release --bin table1 -- --instances 20
//! ```

use cqac_sim::properties::{run_property_audit, PropertiesConfig};
use cqac_sim::report::{Args, Table};

fn main() {
    let args = Args::from_env();
    let mut cfg = PropertiesConfig::quick();
    cfg.instances = args.get_parse("instances", cfg.instances);
    cfg.deviation_samples = args.get_parse("deviation-samples", cfg.deviation_samples);
    cfg.sybil_samples = args.get_parse("sybil-samples", cfg.sybil_samples);
    eprintln!(
        "auditing {} instances x {} deviation samples x {} sybil samples ...",
        cfg.instances, cfg.deviation_samples, cfg.sybil_samples
    );
    let rows = run_property_audit(&cfg);

    let mut table = Table::new(
        "Table I property audit",
        &[
            "mechanism",
            "claimed SP",
            "deviation violations",
            "claimed sybil-immune",
            "sybil successes",
        ],
    );
    for r in &rows {
        table.push_row(vec![
            r.mechanism.clone(),
            if r.claimed_strategyproof { "yes" } else { "no" }.to_string(),
            format!("{}/{}", r.deviation_violations, r.deviation_trials),
            if r.claimed_sybil_immune { "yes" } else { "no" }.to_string(),
            format!("{}/{}", r.sybil_violations, r.sybil_trials),
        ]);
    }
    print!("{}", table.render());
    match table.write_csv(&cqac_sim::results_dir()) {
        Ok(path) => println!("[csv] {}", path.display()),
        Err(e) => eprintln!("[csv] write failed: {e}"),
    }
    println!(
        "\nExpected: CAR shows profitable deviations; CAF/CAF+ fall to the\n\
         fair-share sybil attack; CAT survives both. Two-price's nonzero\n\
         deviation count under the even-shuffle partition is a resampling\n\
         artifact (a deviated bid changes H and thus the shuffle); the\n\
         deviation-stable independent-coin variant (end of §V) shows zero."
    );
}
