//! Figure 4 — admission rate (a), total user payoff (b), and profit
//! (c)–(f) versus max degree of sharing.
//!
//! ```text
//! cargo run -p cqac-sim --release --bin fig4 -- --metric profit --capacity 15000
//! cargo run -p cqac-sim --release --bin fig4 -- --metric admission --sets 10
//! cargo run -p cqac-sim --release --bin fig4 -- --paper      # full 50-set run
//! cargo run -p cqac-sim --release --bin fig4 -- --all        # every panel
//! ```

use cqac_sim::report::{fmt, Args, Table};
use cqac_sim::sweep::{pivot, run_sharing_sweep, SweepCell, SweepConfig};

fn print_panel(title: &str, cells: &[SweepCell], metric: fn(&SweepCell) -> f64) {
    let (degrees, mechs, grid) = pivot(cells, metric);
    let mut headers = vec!["degree".to_string()];
    headers.extend(mechs.iter().cloned());
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(title, &headers_ref);
    for (di, degree) in degrees.iter().enumerate() {
        let mut row = vec![degree.to_string()];
        row.extend(grid[di].iter().map(|v| fmt(*v)));
        table.push_row(row);
    }
    print!("{}", table.render());
    match table.write_csv(&cqac_sim::results_dir()) {
        Ok(path) => println!("[csv] {}\n", path.display()),
        Err(e) => eprintln!("[csv] write failed: {e}\n"),
    }
}

fn run_capacity(capacity: f64, metric_name: &str, cfg_base: &SweepConfig) {
    let cfg = SweepConfig {
        capacity,
        ..cfg_base.clone()
    };
    eprintln!(
        "running sweep: capacity {capacity}, {} sets, {} degrees ...",
        cfg.sets,
        cfg.degrees.len()
    );
    let cells = run_sharing_sweep(&cfg);
    match metric_name {
        "admission" => print_panel(
            &format!("Fig 4(a) admission rate %, capacity {capacity}"),
            &cells,
            |c| c.admission_rate,
        ),
        "payoff" => print_panel(
            &format!("Fig 4(b) total user payoff $, capacity {capacity}"),
            &cells,
            |c| c.total_payoff,
        ),
        "utilization" => print_panel(&format!("utilization, capacity {capacity}"), &cells, |c| {
            c.utilization
        }),
        _ => print_panel(
            &format!("Fig 4 profit $, capacity {capacity}"),
            &cells,
            |c| c.profit,
        ),
    }
}

fn main() {
    let args = Args::from_env();
    let capacity = args.get_parse("capacity", 15_000.0);
    let base = if args.has("paper") {
        SweepConfig::paper(capacity)
    } else {
        let mut cfg = SweepConfig::quick(capacity);
        cfg.sets = args.get_parse("sets", cfg.sets);
        if let Some(degrees) = args.get_list("degrees") {
            cfg.degrees = degrees;
        }
        cfg
    };

    if args.has("all") {
        // The full Figure 4: panels (a) and (b) at 15k, profit at all four
        // capacities (c)–(f).
        run_capacity(15_000.0, "admission", &base);
        run_capacity(15_000.0, "payoff", &base);
        for cap in [5_000.0, 10_000.0, 15_000.0, 20_000.0] {
            run_capacity(cap, "profit", &base);
        }
    } else {
        let metric = args.get("metric").unwrap_or("profit").to_string();
        run_capacity(capacity, &metric, &base);
    }
}
