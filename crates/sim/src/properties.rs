//! Table I / Table V: empirical audit of the game-theoretic properties.
//!
//! The paper proves (Theorems 4–20) which mechanisms are strategyproof and
//! sybil-immune; this experiment *measures* them: on sampled Table III
//! workloads it searches for profitable bid deviations and profitable sybil
//! attacks, and reports violation rates per mechanism. CAR must show
//! deviations (§IV-A); CAF/CAF+ must fall to the Theorem 15 fair-share
//! attack; CAT must survive everything.

use cqac_core::analysis::strategyproof::{best_bid_deviation, default_candidates};
use cqac_core::analysis::sybil::{attacker_payoff, fair_share_attack, random_sybil_attack};
use cqac_core::mechanisms::{Mechanism, MechanismKind, TwoPrice};
use cqac_core::model::QueryId;
use cqac_core::units::Load;
use cqac_workload::{WorkloadGenerator, WorkloadParams};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for the property audit.
#[derive(Clone, Debug)]
pub struct PropertiesConfig {
    /// Number of workload instances audited.
    pub instances: u64,
    /// Root seed.
    pub seed: u64,
    /// Queries sampled for deviation tests per instance.
    pub deviation_samples: usize,
    /// Users sampled for sybil attacks per instance.
    pub sybil_samples: usize,
    /// Workload shape (small instances keep the search tractable).
    pub params: WorkloadParams,
    /// Capacity (chosen to create contention).
    pub capacity: f64,
}

impl PropertiesConfig {
    /// Default audit: 10 instances of 150 queries.
    pub fn quick() -> Self {
        Self {
            instances: 10,
            seed: 17,
            deviation_samples: 12,
            sybil_samples: 8,
            params: WorkloadParams {
                num_queries: 150,
                base_max_degree: 12,
                ..WorkloadParams::scaled(150)
            },
            capacity: 250.0,
        }
    }
}

/// Audit results for one mechanism.
#[derive(Clone, Debug)]
pub struct PropertyRow {
    /// Mechanism label.
    pub mechanism: String,
    /// Paper's strategyproofness claim.
    pub claimed_strategyproof: bool,
    /// Bid deviations attempted.
    pub deviation_trials: u64,
    /// Deviations that strictly beat truthful bidding.
    pub deviation_violations: u64,
    /// Paper's sybil-immunity claim.
    pub claimed_sybil_immune: bool,
    /// Sybil attacks attempted (fair-share construction + randomized).
    pub sybil_trials: u64,
    /// Attacks that strictly increased the attacker's payoff.
    pub sybil_violations: u64,
}

/// Runs the Table I audit over every mechanism in the evaluation line-up.
pub fn run_property_audit(cfg: &PropertiesConfig) -> Vec<PropertyRow> {
    let generator = WorkloadGenerator::new(cfg.params.clone(), cfg.seed);
    let kinds = [
        MechanismKind::Car,
        MechanismKind::Caf,
        MechanismKind::CafPlus,
        MechanismKind::Cat,
        MechanismKind::CatPlus,
        MechanismKind::Gv,
        MechanismKind::TwoPrice,
    ];
    // The Two-price deviation audit re-runs the mechanism on a deviated
    // instance with the same seed; under the even-shuffle partition the
    // deviation perturbs the shuffle itself, so apparent "violations" are
    // partition-resampling artifacts. The §V independent-coin variant is
    // deviation-stable and audits the per-coin-flip guarantee; it is
    // reported as an extra row.
    let mut rows: Vec<PropertyRow> = kinds
        .iter()
        .map(|k| PropertyRow {
            mechanism: k.label().to_string(),
            claimed_strategyproof: k.is_strategyproof(),
            deviation_trials: 0,
            deviation_violations: 0,
            claimed_sybil_immune: k.is_sybil_immune(),
            sybil_trials: 0,
            sybil_violations: 0,
        })
        .collect();
    rows.push(PropertyRow {
        mechanism: "Two-price (coin)".to_string(),
        claimed_strategyproof: true,
        deviation_trials: 0,
        deviation_violations: 0,
        claimed_sybil_immune: false,
        sybil_trials: 0,
        sybil_violations: 0,
    });

    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xABCD);
    for instance_idx in 0..cfg.instances {
        let raw = generator.base_workload(instance_idx);
        let inst = raw.to_instance(Load::from_units(cfg.capacity));
        let n = inst.num_queries();
        let run_seed = cfg.seed ^ instance_idx;

        let mechanisms: Vec<Box<dyn Mechanism>> = kinds
            .iter()
            .map(|k| k.build())
            .chain(std::iter::once(
                Box::new(TwoPrice::per_query_coin()) as Box<dyn Mechanism>
            ))
            .collect();
        for (ki, mech) in mechanisms.iter().enumerate() {
            // --- bid deviations -------------------------------------------------
            let truthful = mech.run_seeded(&inst, run_seed);
            for _ in 0..cfg.deviation_samples {
                let q = QueryId(rng.random_range(0..n as u32));
                let candidates = default_candidates(&inst, q, truthful.payment(q));
                // Thin the candidate list to keep the audit fast but still
                // hitting the reordering thresholds.
                let thinned: Vec<_> = candidates
                    .iter()
                    .copied()
                    .step_by((candidates.len() / 24).max(1))
                    .collect();
                let report = best_bid_deviation(mech.as_ref(), &inst, q, &thinned, run_seed);
                rows[ki].deviation_trials += 1;
                if report.profitable() {
                    rows[ki].deviation_violations += 1;
                }
            }
            // --- sybil attacks ---------------------------------------------------
            for _ in 0..cfg.sybil_samples {
                let q = QueryId(rng.random_range(0..n as u32));
                // The Theorem 15 construction.
                let attack = fair_share_attack(&inst, q, rng.random_range(1..6));
                let outcome = attacker_payoff(mech.as_ref(), &inst, &attack, run_seed);
                rows[ki].sybil_trials += 1;
                if outcome.succeeded() {
                    rows[ki].sybil_violations += 1;
                }
                // A randomized attack.
                let attack = random_sybil_attack(&inst, q, rng.random_range(1..4), &mut rng);
                let outcome = attacker_payoff(mech.as_ref(), &inst, &attack, run_seed);
                rows[ki].sybil_trials += 1;
                if outcome.succeeded() {
                    rows[ki].sybil_violations += 1;
                }
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_confirms_the_paper_claims() {
        let mut cfg = PropertiesConfig::quick();
        cfg.instances = 3;
        cfg.deviation_samples = 6;
        cfg.sybil_samples = 4;
        let rows = run_property_audit(&cfg);
        let row = |name: &str| rows.iter().find(|r| r.mechanism == name).unwrap();

        // CAR is manipulable; the strategyproof mechanisms survive the
        // deviation search (Two-price is audited through the
        // deviation-stable coin-partition variant).
        assert!(
            row("CAR").deviation_violations > 0,
            "CAR must be manipulable"
        );
        for name in ["CAF", "CAT", "GV", "Two-price (coin)"] {
            assert_eq!(
                row(name).deviation_violations,
                0,
                "{name} showed a profitable deviation"
            );
        }

        // Sybil: CAT survives; CAF and CAF+ fall to the fair-share attack.
        assert_eq!(row("CAT").sybil_violations, 0, "CAT must be sybil-immune");
        assert!(row("CAF").sybil_violations > 0, "CAF must be attackable");
        assert!(row("CAF+").sybil_violations > 0, "CAF+ must be attackable");
    }
}
