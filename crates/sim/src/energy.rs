//! The §VII energy extension: "it might be more profitable not to fully
//! utilize the available capacity".
//!
//! The experiment sweeps the *operating* capacity offered to the auction
//! (a fraction of the physically installed capacity) and reports, per
//! mechanism, the auction profit and the net profit after a linear energy
//! cost per operated capacity unit. The paper's own Figure 4(c)–(f)
//! observation — profit is not monotone in capacity once sharing is high —
//! shows up here as an interior optimum.

use cqac_core::mechanisms::MechanismKind;
use cqac_core::units::Load;
use cqac_workload::{WorkloadGenerator, WorkloadParams};

/// Configuration for the capacity/energy sweep.
#[derive(Clone, Debug)]
pub struct EnergyConfig {
    /// Installed capacity (the sweep's 100% point).
    pub installed_capacity: f64,
    /// Operating fractions to evaluate.
    pub fractions: Vec<f64>,
    /// Energy cost per operated capacity unit per day (dollars).
    pub energy_cost_per_unit: f64,
    /// Degree of sharing of the evaluated workload.
    pub degree: u32,
    /// Number of workload sets averaged.
    pub sets: u64,
    /// Mechanisms to evaluate.
    pub mechanisms: Vec<MechanismKind>,
    /// Workload shape.
    pub params: WorkloadParams,
    /// Root seed.
    pub seed: u64,
}

impl EnergyConfig {
    /// Default: sweep 20%–100% of 20k capacity at moderate sharing
    /// (degree 5), where demand ≈ 13.7k sits inside the sweep range and the
    /// interior profit optimum is visible.
    pub fn quick() -> Self {
        Self {
            installed_capacity: 20_000.0,
            fractions: vec![0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0],
            energy_cost_per_unit: 0.02,
            degree: 5,
            sets: 3,
            mechanisms: vec![
                MechanismKind::Caf,
                MechanismKind::Cat,
                MechanismKind::TwoPrice,
            ],
            params: WorkloadParams::paper(),
            seed: 37,
        }
    }
}

/// One sweep point for one mechanism.
#[derive(Clone, Debug)]
pub struct EnergyCell {
    /// Operated fraction of installed capacity.
    pub fraction: f64,
    /// Mechanism label.
    pub mechanism: String,
    /// Mean auction profit (dollars).
    pub profit: f64,
    /// Energy cost of operating this capacity (dollars).
    pub energy_cost: f64,
    /// `profit − energy_cost`.
    pub net_profit: f64,
}

/// Runs the energy sweep.
pub fn run_energy_sweep(cfg: &EnergyConfig) -> Vec<EnergyCell> {
    let generator = WorkloadGenerator::new(cfg.params.clone(), cfg.seed);
    let mechanisms: Vec<_> = cfg
        .mechanisms
        .iter()
        .map(|k| (k.label(), k.build()))
        .collect();
    let mut cells = Vec::new();

    for &fraction in &cfg.fractions {
        let capacity = cfg.installed_capacity * fraction;
        let energy_cost = capacity * cfg.energy_cost_per_unit;
        let mut sums = vec![0.0; mechanisms.len()];
        for set in 0..cfg.sets {
            let sweep = generator.sharing_sweep_at(set, Load::from_units(capacity), &[cfg.degree]);
            let (_, inst) = &sweep[0];
            for (mi, (_, mech)) in mechanisms.iter().enumerate() {
                sums[mi] += mech
                    .run_seeded(inst, cfg.seed ^ set ^ (fraction * 1000.0) as u64)
                    .profit()
                    .as_f64();
            }
        }
        for (mi, (label, _)) in mechanisms.iter().enumerate() {
            let profit = sums[mi] / cfg.sets as f64;
            cells.push(EnergyCell {
                fraction,
                mechanism: label.to_string(),
                profit,
                energy_cost,
                net_profit: profit - energy_cost,
            });
        }
    }
    cells
}

/// The most profitable operating fraction per mechanism (by net profit).
pub fn best_fractions(cells: &[EnergyCell]) -> Vec<(String, f64, f64)> {
    let mut mechs: Vec<String> = Vec::new();
    for c in cells {
        if !mechs.contains(&c.mechanism) {
            mechs.push(c.mechanism.clone());
        }
    }
    mechs
        .into_iter()
        .map(|m| {
            let best = cells
                .iter()
                .filter(|c| c.mechanism == m)
                .max_by(|a, b| a.net_profit.total_cmp(&b.net_profit))
                .expect("non-empty sweep");
            (m, best.fraction, best.net_profit)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_fractions_and_mechanisms() {
        let cfg = EnergyConfig {
            installed_capacity: 1_000.0,
            fractions: vec![0.25, 0.5, 1.0],
            sets: 2,
            degree: 8,
            params: WorkloadParams {
                num_queries: 200,
                base_max_degree: 8,
                ..WorkloadParams::scaled(200)
            },
            ..EnergyConfig::quick()
        };
        let cells = run_energy_sweep(&cfg);
        assert_eq!(cells.len(), 3 * 3);
        let best = best_fractions(&cells);
        assert_eq!(best.len(), 3);
        for (_, fraction, _) in best {
            assert!(cfg.fractions.contains(&fraction));
        }
    }

    #[test]
    fn energy_cost_scales_linearly() {
        let cfg = EnergyConfig {
            installed_capacity: 1_000.0,
            fractions: vec![0.5, 1.0],
            sets: 1,
            degree: 4,
            params: WorkloadParams {
                num_queries: 100,
                base_max_degree: 8,
                ..WorkloadParams::scaled(100)
            },
            ..EnergyConfig::quick()
        };
        let cells = run_energy_sweep(&cfg);
        let half = cells.iter().find(|c| c.fraction == 0.5).unwrap();
        let full = cells.iter().find(|c| c.fraction == 1.0).unwrap();
        assert!((full.energy_cost - 2.0 * half.energy_cost).abs() < 1e-9);
    }
}
