//! Table IV: mean wall-clock runtime of each mechanism on 2000-query
//! workloads at capacity 15,000.
//!
//! Absolute numbers are machine-specific (the paper used a 2.3 GHz Xeon and
//! Java); the reproduction target is the *ordering and magnitude gaps*:
//! Random < GV < Two-price < CAF ≈ CAT ≪ CAF+ ≈ CAT+, with the aggressive
//! mechanisms paying three-plus orders of magnitude for their
//! movement-window payments.

use cqac_core::mechanisms::MechanismKind;
use cqac_core::units::Load;
use cqac_workload::{WorkloadGenerator, WorkloadParams};
use std::collections::BTreeMap;
use std::time::Instant;

/// Configuration for the runtime experiment.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of workload sets.
    pub sets: u64,
    /// Root seed.
    pub seed: u64,
    /// Degrees of sharing sampled per set.
    pub degrees: Vec<u32>,
    /// System capacity.
    pub capacity: f64,
    /// Workload shape (2000 queries in the paper).
    pub params: WorkloadParams,
}

impl RuntimeConfig {
    /// Quick configuration (seconds, same ordering).
    pub fn quick() -> Self {
        Self {
            sets: 2,
            seed: 11,
            degrees: vec![1, 15, 30, 45, 60],
            capacity: 15_000.0,
            params: WorkloadParams::paper(),
        }
    }
}

/// Mean runtime per mechanism, milliseconds.
#[derive(Clone, Debug)]
pub struct RuntimeRow {
    /// Mechanism label (Table IV order).
    pub mechanism: String,
    /// Mean wall-clock milliseconds per auction.
    pub mean_ms: f64,
    /// Number of timed runs.
    pub runs: u64,
}

/// Runs Table IV.
pub fn run_runtime_experiment(cfg: &RuntimeConfig) -> Vec<RuntimeRow> {
    let generator = WorkloadGenerator::new(cfg.params.clone(), cfg.seed);
    let lineup = MechanismKind::evaluation_lineup();
    let mechanisms: Vec<_> = lineup.iter().map(|k| (k.label(), k.build())).collect();
    let mut totals: BTreeMap<usize, (f64, u64)> = BTreeMap::new();

    for set in 0..cfg.sets {
        let sweep = generator.sharing_sweep_at(set, Load::from_units(cfg.capacity), &cfg.degrees);
        for (degree, inst) in sweep {
            for (mi, (_, mech)) in mechanisms.iter().enumerate() {
                let start = Instant::now();
                let outcome = mech.run_seeded(&inst, cfg.seed ^ (set << 8) ^ u64::from(degree));
                let elapsed = start.elapsed().as_secs_f64() * 1e3;
                std::hint::black_box(&outcome);
                let t = totals.entry(mi).or_insert((0.0, 0));
                t.0 += elapsed;
                t.1 += 1;
            }
        }
    }

    totals
        .into_iter()
        .map(|(mi, (sum, n))| RuntimeRow {
            mechanism: mechanisms[mi].0.to_string(),
            mean_ms: sum / n as f64,
            runs: n,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_table4() {
        // Scaled down but same relative shape.
        let cfg = RuntimeConfig {
            sets: 1,
            seed: 5,
            degrees: vec![8, 16],
            capacity: 2_000.0,
            params: WorkloadParams {
                num_queries: 400,
                base_max_degree: 16,
                ..WorkloadParams::scaled(400)
            },
        };
        let rows = run_runtime_experiment(&cfg);
        let ms = |name: &str| rows.iter().find(|r| r.mechanism == name).unwrap().mean_ms;
        // The aggressive mechanisms must dominate the simple ones by a wide
        // margin (Table IV's headline: CAF+/CAT+ cannot scale).
        assert!(
            ms("CAF+") > 10.0 * ms("CAF"),
            "CAF+ {} vs CAF {}",
            ms("CAF+"),
            ms("CAF")
        );
        assert!(
            ms("CAT+") > 10.0 * ms("CAT"),
            "CAT+ {} vs CAT {}",
            ms("CAT+"),
            ms("CAT")
        );
        assert!(ms("Random") <= ms("CAF+"));
    }
}
