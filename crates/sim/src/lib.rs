//! # cqac-sim — the experiment harness
//!
//! One runner per table and figure of the paper's evaluation (§VI), plus the
//! §VII extensions. Every experiment is seeded and regenerable; binaries
//! print aligned tables and write CSV artifacts under `results/`.
//!
//! | Experiment | Paper artifact | Module | Binary |
//! |------------|----------------|--------|--------|
//! | sharing sweep (admission/payoff/profit) | Fig 4(a)–(f) | [`sweep`] | `fig4` |
//! | strategic lying | Fig 5 | [`sweep`] | `fig5` |
//! | property audit | Table I / V | [`properties`] | `table1` |
//! | mechanism runtimes | Table IV | [`runtime`] | `table4` |
//! | utilization | §VI-B text | [`sweep`] | `utilization` |
//! | sybil attacks | §V, Table II | [`sybil_exp`] | `sybil` |
//! | profit guarantee | Thm 11–12 | [`guarantee`] | `guarantee` |
//! | subscription categories | §VII | [`multi_period`] | `multi_period` |
//! | energy/capacity | §VII | [`energy`] | `energy` |
//! | measured vs analytic loads | §II cost model | (direct binary) | `measured_costs` |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod energy;
pub mod guarantee;
pub mod multi_period;
pub mod properties;
pub mod report;
pub mod runtime;
pub mod sweep;
pub mod sybil_exp;

pub use report::{Args, Table};
pub use sweep::{run_lying_sweep, run_sharing_sweep, SweepConfig};

/// Default output directory for CSV artifacts.
pub fn results_dir() -> std::path::PathBuf {
    std::env::var_os("CQAC_RESULTS").map_or_else(
        || std::path::PathBuf::from("results"),
        std::path::PathBuf::from,
    )
}
