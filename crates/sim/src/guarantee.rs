//! Theorems 11–12: Two-price's profit guarantee against the optimal
//! constant-pricing benchmark.
//!
//! * Theorem 11: with the duplicate-repair step, `E[profit] ≥ OPT_C − 2h`.
//! * Theorem 12: without it (polynomial variant), `E[profit] ≥ OPT_C − d·h`
//!   where `d` is the number of boundary-valuation duplicates.
//!
//! Each instance is run under many partition seeds; the experiment reports
//! the empirical mean against both bounds.

use cqac_core::mechanisms::{optimal_constant_price, Mechanism, TwoPrice};
use cqac_core::model::{AdmittedSet, AuctionInstance};
use cqac_core::units::Load;
use cqac_workload::{WorkloadGenerator, WorkloadParams};

/// One instance's guarantee audit.
#[derive(Clone, Debug)]
pub struct GuaranteeRow {
    /// Workload set index.
    pub set: u64,
    /// Max degree of sharing of the audited instance.
    pub degree: u32,
    /// OPT_C: optimal constant-pricing profit.
    pub optc: f64,
    /// The top valuation `h`.
    pub h: f64,
    /// Boundary duplicate count `d` (Theorem 12's parameter).
    pub d: u64,
    /// Mean Two-price profit (with repair) over the partition seeds.
    pub two_price: f64,
    /// Mean polynomial-variant profit (no repair).
    pub two_price_poly: f64,
    /// `OPT_C − 2h` (Theorem 11's floor; may be negative, in which case the
    /// bound is vacuous).
    pub bound_full: f64,
    /// `OPT_C − d·h` (Theorem 12's floor).
    pub bound_poly: f64,
    /// Mean Two-price profit on the *distinctness-perturbed* instance
    /// (Theorem 11's stated assumption restored).
    pub two_price_distinct: f64,
    /// `OPT_C − 2h` of the perturbed instance.
    pub bound_distinct: f64,
}

/// Configuration for the guarantee experiment.
#[derive(Clone, Debug)]
pub struct GuaranteeConfig {
    /// Number of workload sets.
    pub sets: u64,
    /// Partition seeds averaged per instance.
    pub trials: u64,
    /// Root seed.
    pub seed: u64,
    /// Degrees sampled.
    pub degrees: Vec<u32>,
    /// System capacity.
    pub capacity: f64,
    /// Workload shape.
    pub params: WorkloadParams,
}

impl GuaranteeConfig {
    /// Default: 3 sets × 30 partition draws at degrees {1, 30, 60}.
    pub fn quick() -> Self {
        Self {
            sets: 3,
            trials: 30,
            seed: 29,
            degrees: vec![1, 30, 60],
            capacity: 15_000.0,
            params: WorkloadParams::paper(),
        }
    }
}

/// Makes all valuations distinct by adding `i` micro-dollars to query `i`'s
/// bid — Theorem 11 *assumes* distinct valuations, which Table III's integer
/// Zipf bids violate badly (≈ 2000 queries over ≤ 100 values). The
/// perturbation changes each valuation by ≤ 0.2 cents and restores the
/// assumption.
pub fn perturb_to_distinct(inst: &AuctionInstance) -> AuctionInstance {
    let mut out = inst.clone();
    for q in inst.query_ids() {
        let bid = inst.bid(q) + cqac_core::units::Money::from_micro(q.0 as u64);
        out = out.with_bid(q, bid);
    }
    out
}

/// The boundary duplicate count `d`: the number of queries whose valuation
/// equals the first loser's valuation in the by-bid prefix fill (0 when
/// everyone fits).
pub fn boundary_duplicates(inst: &AuctionInstance) -> u64 {
    let mut order: Vec<_> = inst.query_ids().collect();
    order.sort_by(|&a, &b| inst.bid(b).cmp(&inst.bid(a)).then_with(|| a.cmp(&b)));
    let mut state = AdmittedSet::new(inst);
    for &q in &order {
        if state.fits(q) {
            state.admit(q);
        } else {
            let v = inst.bid(q);
            return inst.queries().iter().filter(|qq| qq.bid == v).count() as u64;
        }
    }
    0
}

/// Runs the guarantee audit.
pub fn run_guarantee_experiment(cfg: &GuaranteeConfig) -> Vec<GuaranteeRow> {
    let generator = WorkloadGenerator::new(cfg.params.clone(), cfg.seed);
    let full = TwoPrice::default();
    let poly = TwoPrice::polynomial();
    let mut rows = Vec::new();

    for set in 0..cfg.sets {
        let sweep = generator.sharing_sweep_at(set, Load::from_units(cfg.capacity), &cfg.degrees);
        for (degree, inst) in sweep {
            let optc = optimal_constant_price(&inst);
            let h = inst.max_bid().as_f64();
            let d = boundary_duplicates(&inst);
            let distinct = perturb_to_distinct(&inst);
            let optc_distinct = optimal_constant_price(&distinct).profit.as_f64();
            let h_distinct = distinct.max_bid().as_f64();
            let mut sum_full = 0.0;
            let mut sum_poly = 0.0;
            let mut sum_distinct = 0.0;
            for trial in 0..cfg.trials {
                let seed = cfg.seed ^ (set << 16) ^ (u64::from(degree) << 8) ^ trial;
                sum_full += full.run_seeded(&inst, seed).profit().as_f64();
                sum_poly += poly.run_seeded(&inst, seed).profit().as_f64();
                sum_distinct += full.run_seeded(&distinct, seed).profit().as_f64();
            }
            let optc_f = optc.profit.as_f64();
            rows.push(GuaranteeRow {
                set,
                degree,
                optc: optc_f,
                h,
                d,
                two_price: sum_full / cfg.trials as f64,
                two_price_poly: sum_poly / cfg.trials as f64,
                bound_full: optc_f - 2.0 * h,
                bound_poly: optc_f - d as f64 * h,
                two_price_distinct: sum_distinct / cfg.trials as f64,
                bound_distinct: optc_distinct - 2.0 * h_distinct,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_hold_on_scaled_workloads() {
        let cfg = GuaranteeConfig {
            sets: 2,
            trials: 40,
            seed: 3,
            degrees: vec![1, 8],
            capacity: 800.0,
            params: WorkloadParams {
                num_queries: 300,
                base_max_degree: 8,
                ..WorkloadParams::scaled(300)
            },
        };
        for row in run_guarantee_experiment(&cfg) {
            // Sample-mean slack: the theorems bound the expectation.
            assert!(
                row.two_price >= row.bound_full * 0.9 - 20.0,
                "set {} degree {}: mean {} far below OPT_C − 2h = {}",
                row.set,
                row.degree,
                row.two_price,
                row.bound_full
            );
            assert!(row.optc > 0.0);
            assert!(row.h >= 1.0 && row.h <= 100.0);
        }
    }

    #[test]
    fn boundary_duplicates_counts_ties() {
        use cqac_core::model::InstanceBuilder;
        use cqac_core::units::Money;
        let mut b = InstanceBuilder::new(Load::from_units(2.0));
        for bid in [9.0, 5.0, 5.0, 5.0] {
            let op = b.operator(Load::from_units(1.0));
            b.query(Money::from_dollars(bid), &[op]);
        }
        let inst = b.build().unwrap();
        // Prefix: 9, 5 fit; the third query (bid 5) is the first loser and
        // three queries carry that valuation.
        assert_eq!(boundary_duplicates(&inst), 3);
    }
}
