//! The §VII extension: multiple subscription categories.
//!
//! The paper proposes handling different minimum subscription lengths (day /
//! week / month …) by partitioning system capacity across *subscription
//! categories* and, each day, re-auctioning only the capacity whose
//! subscriptions expire that day. Because each per-category auction is an
//! independent strategyproof auction, the composite scheme stays
//! bid-strategyproof.
//!
//! This module simulates that scheme over a horizon of days and reports the
//! per-category and total revenue stream.

use cqac_core::mechanisms::MechanismKind;
use cqac_core::units::Load;
use cqac_workload::{WorkloadGenerator, WorkloadParams};

/// One subscription category.
#[derive(Clone, Debug)]
pub struct Category {
    /// Human label ("daily", "weekly", …).
    pub name: &'static str,
    /// Subscription length in days; the category re-auctions every
    /// `length_days` days.
    pub length_days: u32,
    /// Fraction of total system capacity allotted to the category.
    pub capacity_share: f64,
}

/// Configuration for the multi-period simulation.
#[derive(Clone, Debug)]
pub struct MultiPeriodConfig {
    /// Simulated horizon in days.
    pub days: u32,
    /// The categories (shares should sum to ≤ 1).
    pub categories: Vec<Category>,
    /// Total system capacity.
    pub capacity: f64,
    /// The auction mechanism run in every category.
    pub mechanism: MechanismKind,
    /// Workload shape *per category auction*.
    pub params: WorkloadParams,
    /// Root seed.
    pub seed: u64,
}

impl MultiPeriodConfig {
    /// Default: 28 days, daily/weekly/monthly categories under CAT.
    pub fn quick() -> Self {
        Self {
            days: 28,
            categories: vec![
                Category {
                    name: "daily",
                    length_days: 1,
                    capacity_share: 0.5,
                },
                Category {
                    name: "weekly",
                    length_days: 7,
                    capacity_share: 0.3,
                },
                Category {
                    name: "monthly",
                    length_days: 28,
                    capacity_share: 0.2,
                },
            ],
            capacity: 1_800.0,
            mechanism: MechanismKind::Cat,
            params: WorkloadParams {
                num_queries: 300,
                base_max_degree: 12,
                ..WorkloadParams::scaled(300)
            },
            seed: 31,
        }
    }
}

/// One day's ledger line.
#[derive(Clone, Debug)]
pub struct DayLine {
    /// Day index (0-based).
    pub day: u32,
    /// Categories that re-auctioned today.
    pub auctions: Vec<&'static str>,
    /// Revenue booked today (a category books its whole subscription
    /// revenue on auction day).
    pub revenue: f64,
    /// Queries admitted today across the re-auctioned categories.
    pub admitted: usize,
    /// Cumulative revenue.
    pub cumulative: f64,
}

/// Runs the multi-period simulation.
pub fn run_multi_period(cfg: &MultiPeriodConfig) -> Vec<DayLine> {
    let generator = WorkloadGenerator::new(cfg.params.clone(), cfg.seed);
    let mechanism = cfg.mechanism.build();
    let mut lines = Vec::with_capacity(cfg.days as usize);
    let mut cumulative = 0.0;

    for day in 0..cfg.days {
        let mut revenue = 0.0;
        let mut admitted = 0;
        let mut auctions = Vec::new();
        for (ci, cat) in cfg.categories.iter().enumerate() {
            if day % cat.length_days != 0 {
                continue; // this category's subscriptions have not expired
            }
            auctions.push(cat.name);
            // A fresh bid pool for the expiring capacity: longer categories
            // draw fresh demand each cycle.
            let set = u64::from(day) * 16 + ci as u64;
            let inst = generator
                .base_workload(cfg.seed ^ set)
                .to_instance(Load::from_units(cfg.capacity * cat.capacity_share));
            let outcome = mechanism.run_seeded(&inst, cfg.seed ^ set);
            revenue += outcome.profit().as_f64();
            admitted += outcome.winners.len();
        }
        cumulative += revenue;
        lines.push(DayLine {
            day,
            auctions,
            revenue,
            admitted,
            cumulative,
        });
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_reauction_on_their_cadence() {
        let mut cfg = MultiPeriodConfig::quick();
        cfg.days = 14;
        cfg.params.num_queries = 120;
        let lines = run_multi_period(&cfg);
        assert_eq!(lines.len(), 14);
        // Day 0: everything starts.
        assert_eq!(lines[0].auctions, vec!["daily", "weekly", "monthly"]);
        // Day 3: only daily.
        assert_eq!(lines[3].auctions, vec!["daily"]);
        // Day 7: daily + weekly.
        assert_eq!(lines[7].auctions, vec!["daily", "weekly"]);
        // Revenue strictly accumulates (auctions are contended).
        assert!(lines.last().unwrap().cumulative >= lines[0].cumulative);
    }

    #[test]
    fn weekly_days_book_more_revenue_than_plain_days() {
        let mut cfg = MultiPeriodConfig::quick();
        cfg.days = 14;
        cfg.params.num_queries = 120;
        let lines = run_multi_period(&cfg);
        // Day 7 re-auctions strictly more capacity than day 6.
        assert!(lines[7].revenue >= lines[6].revenue);
    }
}
