//! Offline stand-in for `serde_json`: renders and parses the vendored
//! `serde` crate's JSON document model as JSON text.

use serde::json::Json;
use serde::{DeError, Deserialize, Serialize};

/// A serialization or deserialization failure.
#[derive(Clone, Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_json().render(&mut out);
    Ok(out)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let doc = Json::parse(text)?;
    Ok(T::from_json(&doc)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_of_pairs_round_trips_through_text() {
        let v: Vec<(String, u64)> = vec![("a".into(), 1), ("b".into(), 2)];
        let text = to_string(&v).unwrap();
        assert_eq!(text, r#"[["a",1],["b",2]]"#);
        let back: Vec<(String, u64)> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parse_failure_is_an_error() {
        assert!(from_str::<u64>("not json").is_err());
        assert!(from_str::<u64>("-3").is_err());
    }
}
