//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: [`Strategy`] with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`Just`], [`collection::vec`], the [`proptest!`] test macro
//! with optional `#![proptest_config(...)]`, and the `prop_assert*` macros.
//!
//! Differences from the real crate, deliberately accepted:
//! * **no shrinking** — a failing case reports its exact inputs instead;
//! * **deterministic seeding** — the RNG seed derives from the test's full
//!   module path, so failures reproduce exactly on every run and machine.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

pub mod collection;

/// Per-`proptest!`-block configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 48 }
    }
}

/// The deterministic RNG driving a test (FNV-1a of the test path as seed).
pub fn rng_for(test_path: &str) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

/// A generator of random test inputs.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// A strategy applying `f` to every drawn value.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// A strategy drawing from a sub-strategy built from each drawn value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.source.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.source.sample(rng)).sample(rng)
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for Range<T>
where
    T: rand::SampleUniform + Debug,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        use rand::RngExt;
        rng.random_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: rand::SampleUniform + Debug,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        use rand::RngExt;
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
);

/// Commonly imported names.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut inputs = ::std::string::String::new();
                    $(
                        let value = $crate::Strategy::sample(&$strat, &mut rng);
                        inputs.push_str(&::std::format!(
                            "  {} = {:?}\n", stringify!($arg), &value
                        ));
                        let $arg = value;
                    )+
                    let outcome: ::core::result::Result<(), ::std::string::String> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(message) = outcome {
                        ::std::panic!(
                            "property failed at case {}/{}:\n{}\ninputs:\n{}",
                            case + 1, config.cases, message, inputs
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Asserts a condition inside [`proptest!`], failing the case (not the
/// process) so the harness can report the generating inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} — {}", stringify!($cond), ::std::format!($($fmt)+)
            ));
        }
    };
}

/// Equality assertion inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} == {} — {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), ::std::format!($($fmt)+), l, r
            ));
        }
    }};
}

/// Inequality assertion inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_and_maps_sample_in_bounds() {
        let mut rng = rng_for("unit");
        let s = (1u32..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..20).contains(&v) && v % 2 == 0);
        }
    }

    #[test]
    fn flat_map_threads_the_first_draw() {
        let mut rng = rng_for("unit2");
        let s = (2usize..6).prop_flat_map(|n| (Just(n), collection::vec(0u8..10, n)));
        for _ in 0..50 {
            let (n, v) = s.sample(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_and_asserts(x in 0u32..50, mut v in collection::vec(0u8..5, 1..4)) {
            v.push(0);
            prop_assert!(x < 50);
            prop_assert!(!v.is_empty(), "len {}", v.len());
            prop_assert_eq!(*v.last().unwrap(), 0u8);
            prop_assert_ne!(v.len(), 0usize);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config_uses_default(x in 0i64..=5) {
            prop_assert!((0..=5).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_reports_inputs() {
        proptest! {
            @impl ProptestConfig::with_cases(4);
            fn inner(x in 10u32..20) {
                prop_assert!(x < 10, "x was {}", x);
            }
        }
        inner();
    }
}
