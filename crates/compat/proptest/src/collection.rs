//! Collection strategies.

use crate::Strategy;
use rand::rngs::StdRng;
use rand::RngExt;
use std::ops::{Range, RangeInclusive};

/// Accepted size specifications for [`vec()`].
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (min, max) = r.into_inner();
        assert!(min <= max, "empty size range");
        Self { min, max }
    }
}

/// A strategy yielding `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.random_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_for;

    #[test]
    fn sizes_respect_every_spec_shape() {
        let mut rng = rng_for("collection");
        for _ in 0..100 {
            assert_eq!(vec(0u8..3, 4usize).sample(&mut rng).len(), 4);
            let l = vec(0u8..3, 1..5).sample(&mut rng).len();
            assert!((1..5).contains(&l));
            let l = vec(0u8..3, 2..=3).sample(&mut rng).len();
            assert!((2..=3).contains(&l));
        }
    }
}
