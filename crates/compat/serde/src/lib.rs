//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal self-consistent serialization layer: [`Serialize`] lowers a value
//! into the [`json::Json`] document model, [`Deserialize`] lifts it back,
//! and the re-exported derive macros generate both impls for the struct and
//! enum shapes this workspace actually contains. `serde_json` (also
//! vendored) renders/parses the document model as real JSON text, so
//! artifacts written by one process are readable by another.
//!
//! The encoding is the natural one: structs become objects keyed by field
//! name, newtype structs are transparent, unit enum variants become strings,
//! and data-carrying variants become single-key objects
//! (`{"Variant": payload}`).

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

use json::Json;

/// Deserialization error: a human-readable path/description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// A new error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Lowers a value into the JSON document model.
pub trait Serialize {
    /// The value as a [`Json`] document.
    fn to_json(&self) -> Json;
}

/// Lifts a value out of the JSON document model.
pub trait Deserialize: Sized {
    /// Reconstructs the value from a [`Json`] document.
    fn from_json(v: &Json) -> Result<Self, DeError>;
}

// ---- primitive impls ------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json { Json::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_json(v: &Json) -> Result<Self, DeError> {
                let raw = v.as_i64()?;
                <$t>::try_from(raw).map_err(|_| DeError::msg(format!(
                    "{raw} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json { Json::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_json(v: &Json) -> Result<Self, DeError> {
                let raw = v.as_u64()?;
                <$t>::try_from(raw).map_err(|_| DeError::msg(format!(
                    "{raw} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        v.as_f64()
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Json {
        Json::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        Ok(v.as_f64()? as f32)
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        match v {
            Json::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        Ok(v.as_str()?.to_string())
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Serialize for std::sync::Arc<str> {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Deserialize for std::sync::Arc<str> {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        Ok(std::sync::Arc::from(v.as_str()?))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        Ok(Box::new(T::from_json(v)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            None => Json::Null,
            Some(x) => x.to_json(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        match v {
            Json::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        v.as_arr()?.iter().map(T::from_json).collect()
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$n.to_json()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json(v: &Json) -> Result<Self, DeError> {
                let items = v.as_arr()?;
                let expected = [$(stringify!($n)),+].len();
                if items.len() != expected {
                    return Err(DeError::msg(format!(
                        "expected {expected}-tuple, got array of {}", items.len()
                    )));
                }
                Ok(($($t::from_json(&items[$n])?,)+))
            }
        }
    )+};
}

impl_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i64::from_json(&42i64.to_json()), Ok(42));
        assert_eq!(u64::from_json(&7u64.to_json()), Ok(7));
        assert_eq!(bool::from_json(&true.to_json()), Ok(true));
        assert_eq!(f64::from_json(&2.5f64.to_json()), Ok(2.5));
        assert_eq!(
            String::from_json(&"hi".to_string().to_json()),
            Ok("hi".to_string())
        );
        assert_eq!(Option::<u32>::from_json(&None::<u32>.to_json()), Ok(None));
        assert_eq!(
            Vec::<u8>::from_json(&vec![1u8, 2].to_json()),
            Ok(vec![1, 2])
        );
        let pair = ("a".to_string(), 3u32);
        assert_eq!(<(String, u32)>::from_json(&pair.to_json()), Ok(pair));
    }

    #[test]
    fn out_of_range_is_rejected() {
        assert!(u8::from_json(&300u64.to_json()).is_err());
        assert!(i8::from_json(&(-200i64).to_json()).is_err());
    }
}
