//! The JSON document model shared by the vendored `serde` and `serde_json`:
//! an owned tree with distinct integer/float number variants (so `u64`
//! micro-unit quantities round-trip exactly), plus a renderer and a strict
//! recursive-descent parser.

use crate::DeError;

/// An owned JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer (kept separate so `u64::MAX` survives).
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A short label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::I64(_) | Json::U64(_) => "integer",
            Json::F64(_) => "float",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// The value as `i64`.
    pub fn as_i64(&self) -> Result<i64, DeError> {
        match self {
            Json::I64(i) => Ok(*i),
            Json::U64(u) => {
                i64::try_from(*u).map_err(|_| DeError::msg(format!("{u} exceeds i64::MAX")))
            }
            other => Err(DeError::msg(format!(
                "expected integer, got {}",
                other.kind()
            ))),
        }
    }

    /// The value as `u64`.
    pub fn as_u64(&self) -> Result<u64, DeError> {
        match self {
            Json::U64(u) => Ok(*u),
            Json::I64(i) => u64::try_from(*i).map_err(|_| DeError::msg(format!("{i} is negative"))),
            other => Err(DeError::msg(format!(
                "expected integer, got {}",
                other.kind()
            ))),
        }
    }

    /// The value as `f64` (integers widen).
    pub fn as_f64(&self) -> Result<f64, DeError> {
        match self {
            Json::F64(f) => Ok(*f),
            Json::I64(i) => Ok(*i as f64),
            Json::U64(u) => Ok(*u as f64),
            other => Err(DeError::msg(format!(
                "expected number, got {}",
                other.kind()
            ))),
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Result<&str, DeError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(DeError::msg(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Result<&[Json], DeError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(DeError::msg(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }

    /// Member `name` of an object.
    pub fn field(&self, name: &str) -> Result<&Json, DeError> {
        match self {
            Json::Obj(members) => members
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError::msg(format!("missing field '{name}'"))),
            other => Err(DeError::msg(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }

    /// Interprets the value as an enum: a bare string is a unit variant, a
    /// single-member object is a data variant with its payload.
    pub fn variant(&self) -> Result<(&str, Option<&Json>), DeError> {
        match self {
            Json::Str(s) => Ok((s, None)),
            Json::Obj(members) if members.len() == 1 => {
                Ok((members[0].0.as_str(), Some(&members[0].1)))
            }
            other => Err(DeError::msg(format!(
                "expected enum (string or single-key object), got {}",
                other.kind()
            ))),
        }
    }

    /// Renders the value as compact JSON text.
    pub fn render(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::I64(i) => {
                out.push_str(&i.to_string());
            }
            Json::U64(u) => {
                out.push_str(&u.to_string());
            }
            Json::F64(f) => {
                if f.is_finite() {
                    // `{:?}` is Rust's shortest round-trip float rendering;
                    // strip no digits so parse(render(x)) == x.
                    let s = format!("{f:?}");
                    out.push_str(&s);
                    // Ensure floats stay floats across a round trip.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text into a value.
    pub fn parse(text: &str) -> Result<Json, DeError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(DeError::msg(format!("trailing input at byte {}", p.pos)));
        }
        Ok(v)
    }
}

fn render_string(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), DeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(DeError::msg(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, DeError> {
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Json::Null),
            Some(b't') if self.literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(DeError::msg(format!(
                "unexpected input at byte {}",
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, DeError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(DeError::msg("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(DeError::msg("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| DeError::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| DeError::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| DeError::msg("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| DeError::msg("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(DeError::msg(format!(
                                "unknown escape '\\{}'",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-scan the full UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| DeError::msg("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty");
                    self.pos = start + c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| DeError::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::F64)
                .map_err(|_| DeError::msg(format!("bad float '{text}'")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Json::I64)
                .map_err(|_| DeError::msg(format!("bad integer '{text}'")))
        } else {
            text.parse::<u64>()
                .map(Json::U64)
                .map_err(|_| DeError::msg(format!("bad integer '{text}'")))
        }
    }

    fn array(&mut self) -> Result<Json, DeError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => {
                    return Err(DeError::msg(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, DeError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => {
                    return Err(DeError::msg(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Json) -> Json {
        let mut s = String::new();
        v.render(&mut s);
        Json::parse(&s).expect("rendered JSON parses")
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::I64(-42),
            Json::U64(u64::MAX),
            Json::F64(2.5),
            Json::F64(1.0e-9),
            Json::Str("he said \"hi\"\n\tok".to_string()),
            Json::Str("unicode: λ→∞".to_string()),
        ] {
            assert_eq!(round_trip(&v), v);
        }
    }

    #[test]
    fn float_stays_float() {
        // 3.0 must not collapse into the integer 3.
        assert_eq!(round_trip(&Json::F64(3.0)), Json::F64(3.0));
    }

    #[test]
    fn containers_round_trip() {
        let v = Json::Obj(vec![
            ("a".to_string(), Json::Arr(vec![Json::U64(1), Json::Null])),
            ("b".to_string(), Json::Obj(vec![])),
            ("empty".to_string(), Json::Arr(vec![])),
        ]);
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(
            v,
            Json::Obj(vec![(
                "a".to_string(),
                Json::Arr(vec![Json::U64(1), Json::U64(2)])
            )])
        );
    }

    #[test]
    fn garbage_rejected() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }
}
