//! Offline stand-in for `criterion`.
//!
//! Provides the group / `bench_function` / `bench_with_input` API surface
//! the workspace's benches use, backed by a simple wall-clock harness:
//! each benchmark runs one warm-up iteration, then `sample_size` timed
//! iterations, and prints mean / min per iteration. No statistics beyond
//! that — the perf trajectory only needs stable relative numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The top-level harness handle passed to bench functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
        }
    }
}

/// A named benchmark id: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id combining a function name with a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self(format!("{function}/{parameter}"))
    }

    /// An id from a plain parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        self.run(&id.to_string(), |b| f(b));
    }

    /// Runs one benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.run(&id.0, |b| f(b, input));
    }

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let samples = &bencher.samples;
        if samples.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        println!(
            "{}/{id}: mean {:>12?}  min {:>12?}  ({} samples)",
            self.name,
            mean,
            min,
            samples.len()
        );
    }

    /// Ends the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Bundles bench functions into a callable group, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_counts_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
            });
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.finish();
        assert_eq!(calls, 4, "one warm-up + three samples");
    }
}
