//! Offline stand-in for `serde_derive`.
//!
//! `syn`/`quote` are not available in this build environment, so the item is
//! parsed directly from its token stream. Supported shapes — the only ones
//! this workspace contains — are: structs with named fields, tuple structs,
//! unit structs, and enums whose variants are unit, tuple, or named-field.
//! Generics are intentionally unsupported (none of the serialized types are
//! generic); `#[serde(...)]` attributes are accepted and ignored — the only
//! one present in-tree is `transparent` on newtype structs, which matches
//! the generated newtype encoding anyway.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (see the crate docs for the encoding).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_type_def(input);
    gen_serialize(&def)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (see the crate docs for the encoding).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_type_def(input);
    gen_deserialize(&def)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---- item model -----------------------------------------------------------

struct TypeDef {
    name: String,
    shape: Shape,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// ---- token-level parsing --------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skips any number of `#[...]` outer attributes.
    fn skip_attrs(&mut self) {
        while matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            self.pos += 1; // '#'
            match self.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    self.pos += 1;
                }
                other => panic!("expected attribute body after '#', got {other:?}"),
            }
        }
    }

    /// Skips `pub` / `pub(...)` visibility.
    fn skip_vis(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            self.pos += 1;
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.pos += 1;
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected identifier, got {other:?}"),
        }
    }

    /// Consumes tokens until a top-level `,` (outside `<...>` nesting) or the
    /// end; the comma itself is consumed. Returns false at end of input.
    fn skip_until_comma(&mut self) -> bool {
        let mut angle_depth = 0i32;
        while let Some(t) = self.next() {
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => return true,
                    _ => {}
                }
            }
        }
        false
    }
}

fn parse_type_def(input: TokenStream) -> TypeDef {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_vis();
    let keyword = c.expect_ident();
    let name = c.expect_ident();
    if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive(Serialize/Deserialize): generic type `{name}` is not supported by the vendored serde_derive");
    }
    let shape = match keyword.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("unsupported struct body: {other:?}"),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, got {other:?}"),
        },
        other => panic!("derive target must be a struct or enum, got `{other}`"),
    };
    TypeDef { name, shape }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        c.skip_attrs();
        if c.at_end() {
            break;
        }
        c.skip_vis();
        fields.push(c.expect_ident());
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected ':' after field name, got {other:?}"),
        }
        if !c.skip_until_comma() {
            break;
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut count = 0;
    loop {
        c.skip_attrs();
        if c.at_end() {
            break;
        }
        c.skip_vis();
        count += 1;
        if !c.skip_until_comma() {
            break;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        c.skip_attrs();
        if c.at_end() {
            break;
        }
        let name = c.expect_ident();
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let fields = count_tuple_fields(g.stream());
                c.pos += 1;
                VariantShape::Tuple(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.pos += 1;
                VariantShape::Named(fields)
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, shape });
        // Consume discriminants (`= expr`) and the trailing comma, if any.
        if !c.skip_until_comma() {
            break;
        }
    }
    variants
}

// ---- code generation ------------------------------------------------------

const JSON: &str = "::serde::json::Json";

fn string_lit(s: &str) -> String {
    format!("::std::string::String::from(\"{s}\")")
}

fn gen_serialize(def: &TypeDef) -> String {
    let name = &def.name;
    let body = match &def.shape {
        Shape::UnitStruct => format!("{JSON}::Null"),
        Shape::TupleStruct(1) => "::serde::Serialize::to_json(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_json(&self.{i})"))
                .collect();
            format!("{JSON}::Arr(::std::vec![{}])", items.join(", "))
        }
        Shape::NamedStruct(fields) => {
            let members: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "({}, ::serde::Serialize::to_json(&self.{f}))",
                        string_lit(f)
                    )
                })
                .collect();
            format!("{JSON}::Obj(::std::vec![{}])", members.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vname} => {JSON}::Str({}),",
                            string_lit(vname)
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vname}(a0) => {JSON}::Obj(::std::vec![({}, ::serde::Serialize::to_json(a0))]),",
                            string_lit(vname)
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("a{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_json(a{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => {JSON}::Obj(::std::vec![({}, {JSON}::Arr(::std::vec![{}]))]),",
                                binds.join(", "),
                                string_lit(vname),
                                items.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let binds = fields.join(", ");
                            let members: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("({}, ::serde::Serialize::to_json({f}))", string_lit(f))
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => {JSON}::Obj(::std::vec![({}, {JSON}::Obj(::std::vec![{}]))]),",
                                string_lit(vname),
                                members.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_json(&self) -> {JSON} {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(def: &TypeDef) -> String {
    let name = &def.name;
    let body = match &def.shape {
        Shape::UnitStruct => "::core::result::Result::Ok(Self)".to_string(),
        Shape::TupleStruct(1) => {
            "::core::result::Result::Ok(Self(::serde::Deserialize::from_json(v)?))".to_string()
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_json(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_arr()?;\n\
                 if items.len() != {n} {{\n\
                     return ::core::result::Result::Err(::serde::DeError::msg(::std::format!(\n\
                         \"expected {n} elements for {name}, got {{}}\", items.len())));\n\
                 }}\n\
                 ::core::result::Result::Ok(Self({}))",
                items.join(", ")
            )
        }
        Shape::NamedStruct(fields) => {
            let members: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_json(v.field(\"{f}\")?)?,"))
                .collect();
            format!(
                "::core::result::Result::Ok(Self {{ {} }})",
                members.join(" ")
            )
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "\"{vname}\" => {{\n\
                                 let p = payload.ok_or_else(|| ::serde::DeError::msg(\n\
                                     \"variant {name}::{vname} requires a payload\"))?;\n\
                                 ::core::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_json(p)?))\n\
                             }}"
                        ),
                        VariantShape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_json(&items[{i}])?"))
                                .collect();
                            format!(
                                "\"{vname}\" => {{\n\
                                     let p = payload.ok_or_else(|| ::serde::DeError::msg(\n\
                                         \"variant {name}::{vname} requires a payload\"))?;\n\
                                     let items = p.as_arr()?;\n\
                                     if items.len() != {n} {{\n\
                                         return ::core::result::Result::Err(::serde::DeError::msg(\n\
                                             ::std::format!(\"expected {n} elements for {name}::{vname}, got {{}}\", items.len())));\n\
                                     }}\n\
                                     ::core::result::Result::Ok({name}::{vname}({}))\n\
                                 }}",
                                items.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let members: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("{f}: ::serde::Deserialize::from_json(p.field(\"{f}\")?)?,")
                                })
                                .collect();
                            format!(
                                "\"{vname}\" => {{\n\
                                     let p = payload.ok_or_else(|| ::serde::DeError::msg(\n\
                                         \"variant {name}::{vname} requires a payload\"))?;\n\
                                     ::core::result::Result::Ok({name}::{vname} {{ {} }})\n\
                                 }}",
                                members.join(" ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "let (tag, payload) = v.variant()?;\n\
                 let _ = &payload;\n\
                 match tag {{\n\
                     {}\n\
                     other => ::core::result::Result::Err(::serde::DeError::msg(\n\
                         ::std::format!(\"unknown variant '{{other}}' for {name}\"))),\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_json(v: &{JSON}) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
