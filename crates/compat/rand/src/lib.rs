//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *exact* API subset it consumes: an object-safe [`Rng`] core
//! trait, the [`RngExt`] extension methods (`random_range`, `random_bool`),
//! [`SeedableRng::seed_from_u64`], a deterministic [`rngs::StdRng`]
//! (xoshiro256** seeded via SplitMix64), and the `seq` helpers
//! ([`seq::SliceRandom::shuffle`], [`seq::index::sample`]).
//!
//! Determinism is the only contract the experiments need: the same seed
//! always yields the same draws, on every platform. Statistical quality is
//! that of xoshiro256**, which is far more than sufficient for the paper's
//! workload generators.

use std::ops::{Range, RangeInclusive};

/// Object-safe random-number source. Mechanisms take `&mut dyn Rng`.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, as in rand's `SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws uniformly from `[lo, hi)`; `hi` is exclusive.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Draws uniformly from `[lo, hi]`; `hi` is inclusive.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty sample range");
                let span = (hi as i128 - lo as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty sample range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty sample range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + (unit as $t) * (hi - lo)
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                Self::sample_half_open(rng, lo, hi)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range shapes accepted by [`RngExt::random_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draws one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Convenience draws, available on every [`Rng`] (including `dyn Rng`).
pub trait RngExt: Rng {
    /// A value drawn uniformly from `range`.
    fn random_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (the workspace's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::{Rng, RngExt};

    /// Slice shuffling, as in rand's `SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    pub mod index {
        //! Index sampling without replacement.

        use super::super::{Rng, RngExt};

        /// Draws `amount` distinct indices from `0..length` (partial
        /// Fisher–Yates; order is the draw order).
        ///
        /// # Panics
        /// Panics when `amount > length`.
        pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> Vec<usize> {
            assert!(amount <= length, "cannot sample {amount} from {length}");
            let mut indices: Vec<usize> = (0..length).collect();
            let mut out = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = rng.random_range(i..length);
                indices.swap(i, j);
                out.push(indices[i]);
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u = rng.random_range(3u32..17);
            assert!((3..17).contains(&u));
            let v = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn uniformity_is_rough_but_sane() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0usize..10)] += 1;
        }
        for c in counts {
            assert!((8_500..11_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle must move something");
    }

    #[test]
    fn index_sample_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let picks = super::seq::index::sample(&mut rng, 100, 20);
        assert_eq!(picks.len(), 20);
        let mut unique = picks.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 20);
        assert!(picks.iter().all(|&i| i < 100));
    }

    #[test]
    fn dyn_rng_is_usable() {
        let mut rng = StdRng::seed_from_u64(11);
        let dyn_rng: &mut dyn Rng = &mut rng;
        let x = dyn_rng.random_range(0u32..10);
        assert!(x < 10);
    }
}
