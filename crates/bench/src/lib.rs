//! Bench-only crate; see `benches/`.
