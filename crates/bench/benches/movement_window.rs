//! Ablation: the movement-window payment computation (CAF+/CAT+,
//! Definitions 5–6) in its two semantically identical implementations.
//!
//! `Naive` re-runs the greedy fill for every candidate position — the cost
//! profile responsible for the paper's Table IV blowup; `Snapshot` does one
//! no-`i` fill per winner with incremental state. DESIGN.md calls this
//! ablation out: the quadratic-vs-linear gap, not the payment rule itself,
//! is what makes the aggressive mechanisms unscalable.

use cqac_core::mechanisms::{CatPlus, Mechanism, MovementWindowMode};
use cqac_core::units::Load;
use cqac_workload::{WorkloadGenerator, WorkloadParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_window_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("movement_window");
    group.sample_size(10);
    for n in [100usize, 200, 400] {
        let generator = WorkloadGenerator::new(WorkloadParams::scaled(n), 42);
        let capacity = Load::from_units(7.5 * n as f64);
        let inst = generator
            .sharing_sweep_at(0, capacity, &[20])
            .into_iter()
            .next()
            .expect("degree 20")
            .1;
        let naive = CatPlus::with_mode(MovementWindowMode::Naive);
        let snapshot = CatPlus::with_mode(MovementWindowMode::Snapshot);
        // Sanity: identical outcomes before timing them.
        let a = naive.run_seeded(&inst, 7);
        let b = snapshot.run_seeded(&inst, 7);
        assert_eq!(a.winners, b.winners);
        assert_eq!(a.payments, b.payments);

        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, _| {
            bch.iter(|| black_box(naive.run_seeded(black_box(&inst), 7)));
        });
        group.bench_with_input(BenchmarkId::new("snapshot", n), &n, |bch, _| {
            bch.iter(|| black_box(snapshot.run_seeded(black_box(&inst), 7)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_window_modes);
criterion_main!(benches);
