//! Scaling of the auction mechanisms with the number of submitted queries —
//! the dimension along which Table IV's conclusion ("the more aggressive
//! mechanisms cannot scale") plays out.

use cqac_core::mechanisms::MechanismKind;
use cqac_core::units::Load;
use cqac_workload::{WorkloadGenerator, WorkloadParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mechanism_scaling");
    group.sample_size(10);
    for n in [250usize, 500, 1000, 2000] {
        let params = WorkloadParams::scaled(n);
        let generator = WorkloadGenerator::new(params, 42);
        // Capacity proportional to size keeps contention comparable.
        let capacity = Load::from_units(7.5 * n as f64);
        let inst = generator
            .sharing_sweep_at(0, capacity, &[30])
            .into_iter()
            .next()
            .expect("degree 30")
            .1;
        for kind in [
            MechanismKind::Gv,
            MechanismKind::Caf,
            MechanismKind::Cat,
            MechanismKind::CatPlus,
            MechanismKind::Car,
        ] {
            let mech = kind.build();
            group.bench_with_input(BenchmarkId::new(kind.label(), n), &n, |b, _| {
                b.iter(|| black_box(mech.run_seeded(black_box(&inst), 7)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
