//! Table IV: per-mechanism auction runtime on paper-scale workloads
//! (2000 queries, capacity 15,000).
//!
//! The paper reports (Java, Xeon 2.3 GHz): Random 0.92 ms, GV 2.0,
//! Two-price 3.7, CAF 7.1, CAT 7.3, CAT+ 10091, CAF+ 12556. Absolute
//! numbers differ here; the ordering and the ~3-order-of-magnitude gap
//! between the simple and the aggressive (movement-window) mechanisms are
//! the reproduction target.

use cqac_core::mechanisms::MechanismKind;
use cqac_core::model::AuctionInstance;
use cqac_core::units::Load;
use cqac_workload::{WorkloadGenerator, WorkloadParams};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn paper_instance(degree: u32) -> AuctionInstance {
    let generator = WorkloadGenerator::new(WorkloadParams::paper(), 42);
    let sweep = generator.sharing_sweep_at(0, Load::from_units(15_000.0), &[degree]);
    sweep.into_iter().next().expect("requested degree").1
}

fn bench_mechanisms(c: &mut Criterion) {
    let inst = paper_instance(30);
    let mut group = c.benchmark_group("table4_runtime");
    group.sample_size(10);
    for kind in MechanismKind::evaluation_lineup() {
        let mech = kind.build();
        group.bench_function(kind.label(), |b| {
            b.iter(|| black_box(mech.run_seeded(black_box(&inst), 7)));
        });
    }
    group.finish();
}

fn bench_degree_extremes(c: &mut Criterion) {
    // The degree of sharing changes instance size (8800 operators at degree
    // 1, ~700 at 60): check the simple mechanisms across both extremes.
    let mut group = c.benchmark_group("runtime_by_degree");
    group.sample_size(20);
    for degree in [1u32, 60] {
        let inst = paper_instance(degree);
        for kind in [
            MechanismKind::Caf,
            MechanismKind::Cat,
            MechanismKind::TwoPrice,
        ] {
            let mech = kind.build();
            group.bench_function(format!("{}_d{degree}", kind.label()), |b| {
                b.iter(|| black_box(mech.run_seeded(black_box(&inst), 7)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_mechanisms, bench_degree_extremes);
criterion_main!(benches);
