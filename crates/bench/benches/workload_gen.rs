//! Workload generation costs: the Table III base instance and the full
//! degree-splitting sweep that derives all 60 sharing levels.

use cqac_core::units::Load;
use cqac_workload::{WorkloadGenerator, WorkloadParams};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let generator = WorkloadGenerator::new(WorkloadParams::paper(), 42);
    let mut group = c.benchmark_group("workload_gen");
    group.sample_size(10);

    group.bench_function("base_2000q", |b| {
        b.iter(|| black_box(generator.base_workload(black_box(0))));
    });

    group.bench_function("full_sweep_60_degrees", |b| {
        b.iter(|| black_box(generator.sharing_sweep(black_box(0), Load::from_units(15_000.0))));
    });

    group.bench_function("sweep_at_4_degrees", |b| {
        b.iter(|| {
            black_box(generator.sharing_sweep_at(
                black_box(0),
                Load::from_units(15_000.0),
                &[1, 20, 40, 60],
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
