//! DSMS substrate throughput: the value of shared operator processing and
//! of batched execution.
//!
//! Two sharing workloads over the same stream volume: `shared` registers 32
//! *identical* selections (one physical operator, 32 sinks), `distinct`
//! registers 32 different-threshold selections (32 physical operators).
//! The shared network processes each tuple once — the premise that makes
//! the paper's auction problem combinatorially hard is also what makes the
//! engine fast.
//!
//! The `ingest_batch_size` group sweeps the engine's batch-size knob
//! (1 vs 64 vs 1024) over the shared-network workload: batch size 1
//! degrades to per-tuple execution, so the sweep tracks the speedup the
//! batched refactor buys in the perf trajectory.
//!
//! The `operator_fusion` group sweeps the fusion knob at batch 64 over two
//! workloads: the 32-shared-filter workload deepened into chains
//! (filter→filter→project — one fused node vs three), and a 6-operator
//! deep chain where fusion's hop removal dominates (6× fewer operator
//! invocations; the shared workload is bounded below by its 32-sink
//! delivery fan-out, which fusion does not touch).
//!
//! The `shard_count` group sweeps the worker-shard knob (1 vs 2 vs 4) over
//! the 32-shared-filter workload at batch 64, asserting the deterministic
//! work counters (`tuples_processed` is shard-count invariant — parallel
//! execution partitions rows, never duplicates them). The
//! `shard_count_keyed_stateful` group runs a symbol-keyed aggregate+join
//! workload with the merge barrier *past* the stateful operators,
//! asserting stateful rows run on the shards with selection pushdown and
//! that the persistent worker pool spawns zero threads after warmup.
//!
//! The `hot_key_skew` group drives a keyed aggregation workload with
//! zipf-skewed vs uniform key distributions (from `cqac-workload`'s
//! hot-key scenarios) at shards=4, sweeping the work-stealing knob. Under
//! skew the hash-partitioned *home* placement concentrates on the hot
//! shard while the *executing*-worker rows stay near-balanced — the
//! morsel scheduler's idle workers steal the hot shard's backlog
//! (`morsels_stolen > 0`); under uniform load the counters show workers
//! park after one failed steal sweep instead of spinning. A
//! `grouped_partials` cell runs a commutative grouped aggregate at a
//! shard-incompatible group key — per-worker hash partials replace the
//! chain-morsel fallback (`chain_morsels == 0`) — with the adaptive
//! morsel controller swept off vs on.
//!
//! The `fault_recovery` group prices the robustness layer: an inert
//! fault plan vs none (per-invocation injection-hook overhead), a
//! mid-run panic quarantine, an injected worker death (inline replay +
//! respawn), and overload shedding under a flood.

use cqac_dsms::engine::DsmsEngine;
use cqac_dsms::expr::Expr;
use cqac_dsms::plan::{AggFunc, LogicalPlan};
use cqac_dsms::streams::{news_schema, quote_schema, NewsStream, StockStream};
use cqac_dsms::types::{DataType, Field, Schema, Tuple, Value};
use cqac_workload::{hot_key_rows, HotKeyParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const SYMBOLS: [&str; 8] = ["IBM", "AAPL", "MSFT", "ORCL", "SAP", "TSM", "AMD", "NVDA"];

fn quotes(n: usize) -> Vec<(String, Tuple)> {
    StockStream::new(&SYMBOLS, 1, 42)
        .next_batch(n)
        .into_iter()
        .map(|t| ("quotes".to_string(), t))
        .collect()
}

fn engine_with(plans: impl IntoIterator<Item = LogicalPlan>) -> DsmsEngine {
    let mut e = DsmsEngine::new();
    e.register_stream("quotes", quote_schema());
    e.register_stream("news", news_schema());
    for p in plans {
        e.add_query(p).expect("valid plan");
    }
    e
}

fn bench_batch_sizes(c: &mut Criterion) {
    let rows: Vec<Tuple> = StockStream::new(&SYMBOLS, 1, 42).next_batch(20_000);
    let mut group = c.benchmark_group("ingest_batch_size");
    group.sample_size(20);
    for cap in [1usize, 64, 1024] {
        group.bench_with_input(
            BenchmarkId::new("shared_32_filters", cap),
            &cap,
            |b, &cap| {
                b.iter(|| {
                    let mut e = engine_with((0..32).map(|_| {
                        LogicalPlan::source("quotes")
                            .filter(Expr::col(1).gt(Expr::lit(Value::Float(100.0))))
                    }));
                    e.set_max_batch_size(cap);
                    e.push_rows("quotes", rows.clone());
                    black_box((e.tuples_processed(), e.batches_processed()))
                });
            },
        );
    }
    group.finish();
}

fn bench_fusion(c: &mut Criterion) {
    let rows: Vec<Tuple> = StockStream::new(&SYMBOLS, 1, 42).next_batch(20_000);
    // The 32-shared-filter workload of `engine_sharing`, deepened into a
    // stateless chain (one fused node vs three). High-pass-rate predicates
    // keep every hop loaded: what fusion removes is the per-hop queue
    // traffic and intermediate batch materialization, so the chain's tail
    // must carry tuples for the sweep to measure it. Note the shared
    // variant is bounded below by its 32-sink delivery fan-out (untouched
    // by fusion); `deep_chain_x6` isolates the hop savings.
    let chain = || {
        LogicalPlan::source("quotes")
            .filter(Expr::col(1).gt(Expr::lit(Value::Float(5.0))))
            .filter(Expr::col(2).gt(Expr::lit(Value::Int(50))))
            .project(vec![
                ("symbol".to_string(), Expr::col(0)),
                ("price".to_string(), Expr::col(1)),
            ])
    };
    let mut group = c.benchmark_group("operator_fusion");
    group.sample_size(20);
    for fused in [false, true] {
        group.bench_with_input(
            BenchmarkId::new("shared_32_chains_batch64", fused),
            &fused,
            |b, &fused| {
                b.iter(|| {
                    let mut e = DsmsEngine::new().with_fusion(fused).with_max_batch_size(64);
                    e.register_stream("quotes", quote_schema());
                    for _ in 0..32 {
                        e.add_query(chain()).expect("valid plan");
                    }
                    e.push_rows("quotes", rows.clone());
                    black_box((e.tuples_processed(), e.batches_processed()))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("deep_chain_x6_batch64", fused),
            &fused,
            |b, &fused| {
                // One query, six stateless operators: unfused moves every
                // surviving tuple through six queue hops; fused runs the
                // whole chain in one node.
                let mut deep = LogicalPlan::source("quotes")
                    .filter(Expr::col(1).gt(Expr::lit(Value::Float(2.0))));
                for i in 0..4i64 {
                    deep = deep.filter(Expr::col(2).gt(Expr::lit(Value::Int(i))));
                }
                let deep = deep.project(vec![
                    ("symbol".to_string(), Expr::col(0)),
                    ("price".to_string(), Expr::col(1)),
                ]);
                b.iter(|| {
                    let mut e = DsmsEngine::new().with_fusion(fused).with_max_batch_size(64);
                    e.register_stream("quotes", quote_schema());
                    e.add_query(deep.clone()).expect("valid plan");
                    e.push_rows("quotes", rows.clone());
                    black_box((e.tuples_processed(), e.batches_processed()))
                });
            },
        );
    }
    group.finish();
}

fn bench_shards(c: &mut Criterion) {
    // The 32-shared-filter workload through the parallel executor at
    // shard counts 1/2/4. The deterministic `tuples_processed` assertion
    // proves sharding partitions rows without duplicating per-row work;
    // wall clock tracks the multi-core win on machines that have the
    // cores (single-core CI containers show flat wall clock — trust the
    // work counters there, as with the fusion group).
    let rows: Vec<Tuple> = StockStream::new(&SYMBOLS, 1, 42).next_batch(20_000);
    let mut group = c.benchmark_group("shard_count");
    group.sample_size(10);
    let mut baseline_work: Option<u64> = None;
    for shards in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("shared_32_filters_batch64", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let mut e = DsmsEngine::new()
                        .with_max_batch_size(64)
                        .with_shards(shards);
                    e.register_stream("quotes", quote_schema());
                    for _ in 0..32 {
                        e.add_query(
                            LogicalPlan::source("quotes")
                                .filter(Expr::col(1).gt(Expr::lit(Value::Float(100.0)))),
                        )
                        .expect("valid plan");
                    }
                    e.push_rows("quotes", rows.clone());
                    let processed = e.tuples_processed();
                    match baseline_work {
                        Some(want) => {
                            assert_eq!(want, processed, "sharding must not duplicate per-row work");
                        }
                        None => baseline_work = Some(processed),
                    }
                    black_box((processed, e.batches_processed()))
                });
            },
        );
    }
    group.finish();

    // Keyed stateful sharding: a symbol-grouped aggregate + symbol-keyed
    // join workload where the merge barrier sits *past* the stateful
    // operators. The engine persists across iterations (fresh
    // time-advancing batches, so windows close and join state evicts) to
    // pin the two deterministic claims of the refactor: stateful rows are
    // processed on the shards (`keyed_shard_rows`, with selection
    // pushdown), and after the warmup flush the worker pool never spawns
    // again (`pool_spawns` stays flat — flushes wake parked workers).
    let mut group = c.benchmark_group("shard_count_keyed_stateful");
    group.sample_size(10);
    for shards in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("agg_join_batch64", shards),
            &shards,
            |b, &shards| {
                let mut quotes_feed = StockStream::new(&SYMBOLS, 1, 42);
                let mut news_feed = NewsStream::new(&SYMBOLS, 2, 43);
                let mut e = DsmsEngine::new()
                    .with_max_batch_size(64)
                    .with_shards(shards)
                    .with_shard_key("quotes", 0)
                    .with_shard_key("news", 0);
                e.register_stream("quotes", quote_schema());
                e.register_stream("news", news_schema());
                let high = LogicalPlan::source("quotes")
                    .filter(Expr::col(1).gt(Expr::lit(Value::Float(20.0))));
                e.add_query(high.clone().aggregate(Some(0), AggFunc::Count, 0, 500))
                    .expect("valid plan");
                e.add_query(high.join(LogicalPlan::source("news"), 0, 0, 100))
                    .expect("valid plan");
                // Warmup flush: spawns the pool, exactly once per engine.
                cqac_dsms::types::work::reset();
                e.push_rows("quotes", quotes_feed.next_batch(64));
                let warm = cqac_dsms::types::work::snapshot();
                if shards > 1 {
                    assert_eq!(warm.pool_spawns as usize, shards, "warmup spawns the pool");
                }
                b.iter(|| {
                    e.push_rows("quotes", quotes_feed.next_batch(5_000));
                    e.push_rows("news", news_feed.next_batch(1_250));
                    black_box(e.tuples_processed())
                });
                let snap = cqac_dsms::types::work::snapshot();
                if shards > 1 {
                    assert_eq!(
                        snap.pool_spawns, warm.pool_spawns,
                        "zero worker spawns after warmup"
                    );
                    assert!(
                        snap.keyed_shard_rows > 0,
                        "stateful rows must run on the shards"
                    );
                    assert!(
                        snap.selection_pushdown_rows > 0,
                        "selection vectors push into the stateful operators"
                    );
                }
            },
        );
    }
    group.finish();
}

fn bench_hot_key_skew(c: &mut Criterion) {
    // Work stealing under key skew. The stream is keyed on an integer
    // column whose distribution is either Zipf(64, 1) — the hottest key
    // draws ~21% of rows, so its home shard owns ~40% of all work — or
    // the uniform control with the same support and seed. Two queries: a
    // key-grouped Count (commutative keyed member → chunked into
    // stealable morsels) and an ungrouped Sum over the Int payload (a
    // partial-aggregation member combined on the control thread). The
    // engine persists across iterations with time-advancing rows so
    // windows close and the pool stays warm; counters accumulate over
    // every iteration, which smooths scheduling noise out of the balance
    // assertions.
    let event_schema = || {
        Schema::new(vec![
            Field::new("key", DataType::Int),
            Field::new("value", DataType::Int),
        ])
    };
    let mut group = c.benchmark_group("hot_key_skew");
    group.sample_size(10);
    for (label, params) in [
        ("skewed", HotKeyParams::skewed(20_000)),
        ("uniform", HotKeyParams::uniform(20_000)),
    ] {
        let base = hot_key_rows(&params);
        let span = params.rows as u64;
        for stealing in [false, true] {
            group.bench_with_input(
                BenchmarkId::new(label, if stealing { "stealing" } else { "no_steal" }),
                &stealing,
                |b, &stealing| {
                    let mut e = DsmsEngine::new()
                        .with_max_batch_size(64)
                        .with_shards(4)
                        .with_shard_key("events", 0)
                        .with_morsel_batches(1) // finest morsels: maximal rebalancing
                        .with_stealing(stealing);
                    e.register_stream("events", event_schema());
                    e.add_query(LogicalPlan::source("events").aggregate(
                        Some(0),
                        AggFunc::Count,
                        0,
                        500,
                    ))
                    .expect("valid plan");
                    e.add_query(LogicalPlan::source("events").aggregate(
                        None,
                        AggFunc::Sum,
                        1,
                        500,
                    ))
                    .expect("valid plan");
                    let mut epoch = 0u64;
                    let mut feed = |e: &mut DsmsEngine| {
                        let off = epoch * span;
                        epoch += 1;
                        let rows = base
                            .iter()
                            .map(|r| {
                                Tuple::new(
                                    r.ts + off,
                                    vec![Value::Int(r.key as i64), Value::Int(r.value)],
                                )
                            })
                            .collect();
                        e.push_rows("events", rows);
                    };
                    // Warmup flush spawns the pool; count from a clean slate.
                    feed(&mut e);
                    cqac_dsms::types::work::reset();
                    b.iter(|| {
                        feed(&mut e);
                        black_box(e.tuples_processed())
                    });
                    let snap = cqac_dsms::types::work::snapshot();
                    assert!(snap.morsels_executed > 0, "sharded flushes run as morsels");
                    if stealing {
                        // Idle-free: every miss belongs to one bounded
                        // victim sweep (≤ shards-1 per `grab`), and a
                        // worker makes one grab per morsel it executes
                        // plus one parking sweep per wakeup — workers
                        // never spin on empty deques.
                        assert!(
                            snap.steal_misses <= (snap.morsels_executed + snap.pool_wakeups) * 3,
                            "steal misses ({}) exceed the sweep bound of {} morsels + {} wakeups",
                            snap.steal_misses,
                            snap.morsels_executed,
                            snap.pool_wakeups
                        );
                        if label == "skewed" {
                            assert!(
                                snap.morsels_stolen > 0,
                                "idle workers must steal the hot shard's backlog"
                            );
                        }
                    } else {
                        assert_eq!(snap.morsels_stolen, 0, "stealing is off");
                        assert_eq!(snap.steal_misses, 0, "no steal sweeps when off");
                    }
                    // Home placement vs executing worker. `shard_rows` is
                    // partition-time (hash of the key column): skew shows
                    // here no matter what the scheduler does.
                    let home = &e.stream_stats()["events"].shard_rows;
                    let home_total: u64 = home.iter().sum();
                    let home_max = home.iter().copied().max().unwrap_or(0);
                    if label == "skewed" {
                        assert!(
                            home_max * 10 > home_total * 3,
                            "zipf placement must concentrate on a hot shard \
                             (max {home_max} of {home_total})"
                        );
                    }
                    // `shard_stats` attributes rows to the *executing*
                    // worker, so stealing keeps them near-balanced even
                    // under skew. Scheduling-dependent, so only asserted
                    // when workers can actually overlap, and leniently:
                    // no worker hoards >3/4 of the rows and at least two
                    // workers execute.
                    let parallel =
                        std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
                    if stealing && parallel >= 2 {
                        let exec: Vec<u64> = e.shard_stats().iter().map(|s| s.rows).collect();
                        let total: u64 = exec.iter().sum();
                        let max = exec.iter().copied().max().unwrap_or(0);
                        assert!(
                            max * 4 <= total * 3,
                            "executing rows stay near-balanced under stealing ({exec:?})"
                        );
                        assert!(
                            exec.iter().filter(|&&r| r > 0).count() >= 2,
                            "stealing spreads execution across workers ({exec:?})"
                        );
                    }
                },
            );
        }
    }
    // Grouped partial aggregation: a commutative grouped Sum at a
    // shard-incompatible group key (the Int payload, col 1 — the shard key
    // is col 0) runs as per-worker hash partials combined on the control
    // thread instead of falling back to serialized chain morsels behind
    // the merge barrier. Swept with the adaptive morsel controller off vs
    // on; under the controller the configured grain is only a ceiling.
    let params = HotKeyParams::skewed(20_000);
    let base = hot_key_rows(&params);
    let span = params.rows as u64;
    for adaptive in [false, true] {
        group.bench_with_input(
            BenchmarkId::new(
                "grouped_partials",
                if adaptive { "adaptive" } else { "static" },
            ),
            &adaptive,
            |b, &adaptive| {
                let mut e = DsmsEngine::new()
                    .with_max_batch_size(64)
                    .with_shards(4)
                    .with_shard_key("events", 0)
                    .with_morsel_batches(8)
                    .with_stealing(true)
                    .with_adaptive_morsels(adaptive);
                e.register_stream("events", event_schema());
                e.add_query(LogicalPlan::source("events").aggregate(Some(1), AggFunc::Sum, 1, 500))
                    .expect("valid plan");
                let mut epoch = 0u64;
                let mut feed = |e: &mut DsmsEngine| {
                    let off = epoch * span;
                    epoch += 1;
                    // Fold the ramp payload down to eight groups so every
                    // group spans many rows, home shards, and therefore
                    // worker partitions — each window close must combine
                    // per-partition partial runs.
                    let rows = base
                        .iter()
                        .map(|r| {
                            Tuple::new(
                                r.ts + off,
                                vec![Value::Int(r.key as i64), Value::Int(r.value % 8)],
                            )
                        })
                        .collect();
                    e.push_rows("events", rows);
                };
                // Warmup flush spawns the pool; count from a clean slate.
                feed(&mut e);
                cqac_dsms::types::work::reset();
                b.iter(|| {
                    feed(&mut e);
                    black_box(e.tuples_processed())
                });
                let snap = cqac_dsms::types::work::snapshot();
                assert!(
                    snap.grouped_partial_rows > 0,
                    "grouped rows must accumulate in per-worker partials"
                );
                assert!(
                    snap.partial_groups_combined > 0,
                    "the watermark pass must combine per-group partial runs"
                );
                assert_eq!(
                    snap.chain_morsels, 0,
                    "a commutative grouped workload needs no chain-morsel fallback"
                );
            },
        );
    }
    group.finish();
}

fn bench_sharing(c: &mut Criterion) {
    let batch = quotes(5_000);
    let mut group = c.benchmark_group("engine_sharing");
    group.sample_size(20);

    group.bench_function("32_shared_filters", |b| {
        b.iter(|| {
            let mut e = engine_with((0..32).map(|_| {
                LogicalPlan::source("quotes")
                    .filter(Expr::col(1).gt(Expr::lit(Value::Float(100.0))))
            }));
            e.push_batch(batch.iter().cloned());
            black_box(e.tuples_processed())
        });
    });

    group.bench_function("32_distinct_filters", |b| {
        b.iter(|| {
            let mut e = engine_with((0..32).map(|i| {
                LogicalPlan::source("quotes")
                    .filter(Expr::col(1).gt(Expr::lit(Value::Float(80.0 + i as f64))))
            }));
            e.push_batch(batch.iter().cloned());
            black_box(e.tuples_processed())
        });
    });
    group.finish();
}

fn bench_operators(c: &mut Criterion) {
    let batch = quotes(5_000);
    let news: Vec<(String, Tuple)> = NewsStream::new(&SYMBOLS, 2, 43)
        .next_batch(2_500)
        .into_iter()
        .map(|t| ("news".to_string(), t))
        .collect();
    let mut group = c.benchmark_group("engine_operators");
    group.sample_size(20);

    group.bench_function("filter_5k", |b| {
        b.iter(|| {
            let mut e = engine_with([LogicalPlan::source("quotes")
                .filter(Expr::col(1).gt(Expr::lit(Value::Float(100.0))))]);
            e.push_batch(batch.iter().cloned());
            black_box(e.tuples_processed())
        });
    });

    group.bench_function("aggregate_5k", |b| {
        b.iter(|| {
            let mut e = engine_with([LogicalPlan::source("quotes").aggregate(
                Some(0),
                AggFunc::Avg,
                1,
                100,
            )]);
            e.push_batch(batch.iter().cloned());
            black_box(e.tuples_processed())
        });
    });

    group.bench_function("join_5k_x_2k5", |b| {
        b.iter(|| {
            let mut e = engine_with([LogicalPlan::source("quotes").join(
                LogicalPlan::source("news"),
                0,
                0,
                50,
            )]);
            e.push_batch(batch.iter().cloned());
            e.push_batch(news.iter().cloned());
            black_box(e.tuples_processed())
        });
    });
    group.finish();
}

/// The robustness layer's price and recovery cost: an inert fault plan
/// (every kernel invocation pays the injection hook) vs no plan at all,
/// a mid-run quarantine (panic → attribution → query removal), an
/// injected worker death (inline morsel replay + seat respawn), and a
/// flood against the overload guardrails (deterministic shedding).
fn bench_fault_recovery(c: &mut Criterion) {
    use cqac_dsms::engine::OverloadPolicy;
    use cqac_dsms::fault::FaultPlan;
    use std::sync::Arc;

    let rows: Vec<Tuple> = StockStream::new(&SYMBOLS, 1, 42).next_batch(20_000);
    let build = |shards: usize| {
        let mut e = DsmsEngine::new();
        e.set_shards(shards);
        e.set_shard_key("quotes", 0).expect("valid shard key");
        e.register_stream("quotes", quote_schema());
        for i in 0..8 {
            e.add_query(
                LogicalPlan::source("quotes")
                    .filter(Expr::col(1).gt(Expr::lit(Value::Float(60.0 + f64::from(i)))))
                    .aggregate(Some(0), AggFunc::Count, 0, 100),
            )
            .expect("valid plan");
        }
        e
    };

    let mut group = c.benchmark_group("fault_recovery");
    group.sample_size(10);

    group.bench_function("no_plan_20k", |b| {
        b.iter(|| {
            let mut e = build(1);
            e.push_rows("quotes", rows.clone());
            black_box(e.tuples_processed())
        });
    });

    group.bench_function("inert_plan_20k", |b| {
        b.iter(|| {
            let mut e = build(1);
            e.set_fault_plan(Some(Arc::new(FaultPlan::new())));
            e.push_rows("quotes", rows.clone());
            black_box(e.tuples_processed())
        });
    });

    group.bench_function("quarantine_20k", |b| {
        b.iter(|| {
            let mut e = build(1);
            // One victim panics mid-run; the other 7 queries keep serving.
            e.set_fault_plan(Some(Arc::new(FaultPlan::new().panic_on("aggregate", 100))));
            e.push_rows("quotes", rows.clone());
            black_box((e.tuples_processed(), e.take_quarantine_events().len()))
        });
    });

    group.bench_function("worker_death_20k_shards4", |b| {
        b.iter(|| {
            let mut e = build(4);
            e.set_fault_plan(Some(Arc::new(FaultPlan::new().with_worker_death(1, 1))));
            e.push_rows("quotes", rows.clone());
            black_box(e.tuples_processed())
        });
    });

    group.bench_function("overload_shed_20k", |b| {
        b.iter(|| {
            let mut e = build(1);
            e.set_overload_policy(Some(OverloadPolicy {
                max_rows_per_flush: 4_096,
            }));
            e.push_rows("quotes", rows.clone());
            black_box(e.tuples_processed())
        });
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_batch_sizes,
    bench_fusion,
    bench_shards,
    bench_hot_key_skew,
    bench_sharing,
    bench_operators,
    bench_fault_recovery
);
criterion_main!(benches);
