//! Columnar vs. row-at-a-time kernels: the value of the columnar batch
//! layout and of zero-copy sink fan-out.
//!
//! Two workloads from the fusion benchmark, run under both kernel modes
//! (`cqac_dsms::ops::set_columnar_kernels`):
//!
//! * `shared_32_chains` — 32 identical filter→filter→project queries (one
//!   fused node, 32 sinks): dominated by delivery fan-out, which the
//!   Arc-shared sink path makes copy-free;
//! * `deep_chain_x6` — one query, six stateless operators fused into one
//!   node: dominated by kernel work, where the columnar path replaces
//!   per-row `Value` dispatch with typed column loops.
//!
//! Wall clock on the build container is throttle-noisy, so the benchmark
//! *asserts and prints* the deterministic work counters
//! (`cqac_dsms::types::work`): the columnar path must run with **zero**
//! per-row expression evaluations, **zero** row materializations, and
//! **zero** per-sink batch copies, while the row path pays per-row for
//! everything. The SIMD/dictionary counters extend the gate: the columnar
//! path must drive the unrolled lane loops (`simd_lanes > 0`) and run the
//! shared chains' string predicate entirely on dictionary codes
//! (`dict_code_cmps > 0`, `str_cmps == 0` — string bytes are touched only
//! at dictionary-build granularity, never per row). Those counters, not
//! the timings, are the regression gate.

use cqac_dsms::engine::DsmsEngine;
use cqac_dsms::expr::{CmpOp, Expr};
use cqac_dsms::ops::with_columnar_kernels;
use cqac_dsms::plan::LogicalPlan;
use cqac_dsms::streams::{quote_schema, StockStream};
use cqac_dsms::types::{work, Tuple, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const SYMBOLS: [&str; 8] = ["IBM", "AAPL", "MSFT", "ORCL", "SAP", "TSM", "AMD", "NVDA"];
const ROWS: usize = 20_000;

/// filter→filter→filter→project with high pass rates (keeps every stage
/// loaded). The first stage runs contiguous lane loops; the string stage
/// refines the inherited selection through the dictionary verdict table —
/// per-row work is one u32 code lookup, never a byte compare.
fn chain() -> LogicalPlan {
    LogicalPlan::source("quotes")
        .filter(Expr::col(1).gt(Expr::lit(Value::Float(5.0))))
        .filter(Expr::col(2).gt(Expr::lit(Value::Int(50))))
        .filter(Expr::col(0).cmp(CmpOp::Ne, Expr::lit(Value::str("NVDA"))))
        .project(vec![
            ("symbol".to_string(), Expr::col(0)),
            ("price".to_string(), Expr::col(1)),
        ])
}

/// One query, six stateless operators (all fused into one node).
fn deep_chain() -> LogicalPlan {
    let mut deep =
        LogicalPlan::source("quotes").filter(Expr::col(1).gt(Expr::lit(Value::Float(2.0))));
    for i in 0..4i64 {
        deep = deep.filter(Expr::col(2).gt(Expr::lit(Value::Int(i))));
    }
    deep.project(vec![
        ("symbol".to_string(), Expr::col(0)),
        ("price".to_string(), Expr::col(1)),
    ])
}

fn run_workload(plans: &[LogicalPlan], rows: &[Tuple]) -> (u64, u64) {
    let mut e = DsmsEngine::new().with_max_batch_size(64);
    e.register_stream("quotes", quote_schema());
    for p in plans {
        e.add_query(p.clone()).expect("valid plan");
    }
    e.push_rows("quotes", rows.to_vec());
    (e.tuples_processed(), e.batches_processed())
}

/// Runs `plans` under one kernel mode and returns the work counters.
fn measure(plans: &[LogicalPlan], rows: &[Tuple], columnar: bool) -> work::WorkSnapshot {
    with_columnar_kernels(columnar, || {
        work::reset();
        black_box(run_workload(plans, rows));
        work::snapshot()
    })
}

fn bench_columnar_kernels(c: &mut Criterion) {
    let rows: Vec<Tuple> = StockStream::new(&SYMBOLS, 1, 42).next_batch(ROWS);
    let shared: Vec<LogicalPlan> = (0..32).map(|_| chain()).collect();
    let deep = [deep_chain()];

    // Deterministic comparison first: the regression gate the acceptance
    // criteria pin, independent of wall clock.
    println!("\n-- columnar vs row work counters ({ROWS} rows, batch 64) --");
    println!(
        "{:<22} {:>6} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "workload",
        "mode",
        "rows_mat",
        "row_evals",
        "kernel_ops",
        "deep_clones",
        "simd_lanes",
        "dict_cmps",
        "str_cmps"
    );
    for (name, plans) in [
        ("shared_32_chains", &shared[..]),
        ("deep_chain_x6", &deep[..]),
    ] {
        let row = measure(plans, &rows, false);
        let col = measure(plans, &rows, true);
        for (mode, snap) in [("row", &row), ("col", &col)] {
            println!(
                "{:<22} {:>6} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>10}",
                name,
                mode,
                snap.rows_materialized,
                snap.row_evals,
                snap.kernel_ops,
                snap.batch_deep_clones,
                snap.simd_lanes,
                snap.dict_code_cmps,
                snap.str_cmps
            );
        }
        assert_eq!(
            col.row_evals, 0,
            "{name}: columnar path must not eval per row"
        );
        assert_eq!(
            col.rows_materialized, 0,
            "{name}: columnar path must not materialize rows (zero per-sink clones)"
        );
        assert_eq!(
            col.batch_deep_clones, 0,
            "{name}: fan-out must share batches"
        );
        assert!(
            row.row_evals > ROWS as u64,
            "{name}: row path pays at least one eval per row"
        );
        assert!(
            col.kernel_ops * 16 < row.row_evals,
            "{name}: kernel passes must be per batch, not per row"
        );
        assert!(
            col.simd_lanes > 0,
            "{name}: columnar compares must run the unrolled lane loops"
        );
        assert_eq!(
            row.simd_lanes, 0,
            "{name}: the row interpreter never touches the lane loops"
        );
        assert_eq!(
            col.str_cmps, 0,
            "{name}: zero per-row string byte compares on the dict path"
        );
        if name == "shared_32_chains" {
            assert!(
                col.dict_code_cmps > 0,
                "{name}: the string predicate must compare dictionary codes"
            );
        }
    }

    // Node fan-out: 32 *distinct* filters consuming every stream batch.
    // Before copy-on-write column sharing, N node consumers cost N−1 deep
    // clones per batch; with `TupleBatch`'s Arc-shared columns nobody
    // copies row data — readers share, writers build fresh batches.
    let distinct: Vec<LogicalPlan> = (0..32)
        .map(|i| {
            LogicalPlan::source("quotes")
                .filter(Expr::col(1).gt(Expr::lit(Value::Float(80.0 + i as f64))))
        })
        .collect();
    let fanout = measure(&distinct, &rows, true);
    println!(
        "{:<22} {:>6} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "distinct_32_fanout",
        "col",
        fanout.rows_materialized,
        fanout.row_evals,
        fanout.kernel_ops,
        fanout.batch_deep_clones,
        fanout.simd_lanes,
        fanout.dict_code_cmps,
        fanout.str_cmps
    );
    assert_eq!(
        fanout.batch_deep_clones, 0,
        "node fan-out shares columns copy-on-write: zero deep clones"
    );

    // Wall-clock sweep (noisy on shared hardware; trust the counters).
    let mut group = c.benchmark_group("columnar_kernels");
    group.sample_size(10);
    for columnar in [false, true] {
        group.bench_with_input(
            BenchmarkId::new("shared_32_chains_batch64", columnar),
            &columnar,
            |b, &columnar| {
                b.iter(|| with_columnar_kernels(columnar, || run_workload(&shared, &rows)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("deep_chain_x6_batch64", columnar),
            &columnar,
            |b, &columnar| {
                b.iter(|| with_columnar_kernels(columnar, || run_workload(&deep, &rows)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_columnar_kernels);
criterion_main!(benches);
